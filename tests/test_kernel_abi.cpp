// Tests for the kernel ABI: assembler metadata directives, launch-time
// argument binding (the loader patch + parameter window), footprint-driven
// multicore staging, module-cache hit accounting, host-thread-safe stream /
// batch submission, and scalar-backend entry points.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "asm/assembler.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "runtime/args.hpp"
#include "runtime/batch.hpp"
#include "runtime/buffer.hpp"
#include "runtime/device.hpp"
#include "runtime/module.hpp"
#include "runtime/stream.hpp"

namespace simt::runtime {
namespace {

core::CoreConfig small_cfg(unsigned threads = 256,
                           unsigned mem_words = 1024) {
  core::CoreConfig c;
  c.max_threads = threads;
  c.shared_mem_words = mem_words;
  c.predicates_enabled = true;
  return c;
}

baseline::ScalarCpuConfig scalar_cfg(unsigned mem_words = 1024) {
  baseline::ScalarCpuConfig c;
  c.shared_mem_words = mem_words;
  return c;
}

// ---- binding and the module cache ------------------------------------------

TEST(KernelAbi, SameSourceDifferentBuffersAssemblesOnce) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto a1 = dev.alloc<std::uint32_t>(64);
  auto b1 = dev.alloc<std::uint32_t>(64);
  auto c1 = dev.alloc<std::uint32_t>(64);
  auto a2 = dev.alloc<std::uint32_t>(64);
  auto b2 = dev.alloc<std::uint32_t>(64);
  auto c2 = dev.alloc<std::uint32_t>(64);

  const std::string src = kernels::vecadd_abi();
  Module& first = dev.load_module(src);
  Module& second = dev.load_module(src);  // different buffers, same source
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(dev.module_cache_size(), 1u);
  EXPECT_EQ(dev.module_cache_misses(), 1u);
  EXPECT_EQ(dev.module_cache_hits(), 1u);

  std::vector<std::uint32_t> ha(64), hb(64);
  std::iota(ha.begin(), ha.end(), 10u);
  std::iota(hb.begin(), hb.end(), 500u);
  a1.write(ha);
  b1.write(hb);
  a2.write(hb);
  b2.write(ha);

  const auto kernel = first.kernel("vecadd");
  ASSERT_NE(kernel.info, nullptr);
  EXPECT_EQ(kernel.info->params.size(), 3u);

  // Two launches of ONE assembled module over two buffer sets.
  dev.launch_sync(kernel, 64, KernelArgs().arg(a1).arg(b1).arg(c1));
  dev.launch_sync(kernel, 64, KernelArgs().arg(a2).arg(b2).arg(c2));
  for (unsigned i = 0; i < 64; ++i) {
    ASSERT_EQ(c1.at(i), ha[i] + hb[i]) << i;
    ASSERT_EQ(c2.at(i), ha[i] + hb[i]) << i;
  }
  EXPECT_EQ(dev.module_cache_misses(), 1u);  // still exactly one assembly
}

TEST(KernelAbi, RepatchOnlyWhenTheBindingChanges) {
  // Same kernel + same args twice, then a different binding: results stay
  // correct either way (the resident-signature check is an optimization,
  // not a semantic).
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto a = dev.alloc<std::uint32_t>(32);
  auto b = dev.alloc<std::uint32_t>(32);
  auto c = dev.alloc<std::uint32_t>(32);
  auto d = dev.alloc<std::uint32_t>(32);
  std::vector<std::uint32_t> ha(32, 7), hb(32, 5);
  a.write(ha);
  b.write(hb);

  Module& mod = dev.load_module(kernels::vecadd_abi());
  const auto kernel = mod.kernel("vecadd");
  dev.launch_sync(kernel, 32, KernelArgs().arg(a).arg(b).arg(c));
  dev.launch_sync(kernel, 32, KernelArgs().arg(a).arg(b).arg(c));
  dev.launch_sync(kernel, 32, KernelArgs().arg(a).arg(b).arg(d));
  EXPECT_EQ(c.at(0), 12u);
  EXPECT_EQ(d.at(0), 12u);
}

TEST(KernelAbi, ArgumentValidation) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto a = dev.alloc<std::uint32_t>(16);
  auto b = dev.alloc<std::uint32_t>(16);
  auto c = dev.alloc<std::uint32_t>(16);
  Module& mod = dev.load_module(kernels::vecadd_abi());
  const auto kernel = mod.kernel("vecadd");

  // Too few, wrong kind, and args against a metadata-free kernel all throw.
  EXPECT_THROW(dev.launch_sync(kernel, 16, KernelArgs().arg(a).arg(b)),
               Error);
  EXPECT_THROW(dev.launch_sync(
                   kernel, 16, KernelArgs().arg(a).arg(b).scalar(3)),
               Error);
  Module& legacy = dev.load_module("movi %r1, 1\nexit\n");
  EXPECT_THROW(dev.launch_sync(legacy.kernel(), 16, KernelArgs().arg(a)),
               Error);
  // The stream validates at enqueue, not at synchronize.
  EXPECT_THROW(dev.stream().launch(kernel, 16, KernelArgs().arg(a)), Error);
  // A matching set is fine.
  dev.launch_sync(kernel, 16, KernelArgs().arg(a).arg(b).arg(c));
}

TEST(KernelAbi, InteriorLabelsCarryTheKernelMetadata) {
  // A label inside a .kernel region resolves with the region's ABI info
  // attached, so launching it without arguments is an error instead of a
  // silent run with unpatched $param immediates.
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto out = dev.alloc<std::uint32_t>(16);
  Module& mod = dev.load_module(
      "nop\n"              // legacy preamble: outside any kernel
      ".kernel k\n"
      ".param out buffer\n"
      "movsr %r0, %tid\n"
      "inner:\n"
      "movi %r1, 9\n"
      "sts [%r0 + $out], %r1\n"
      "exit\n");
  EXPECT_EQ(mod.kernel().info, nullptr);  // entry 0 is before the kernel
  ASSERT_NE(mod.kernel("inner").info, nullptr);
  EXPECT_EQ(mod.kernel("inner").info->name, "k");
  EXPECT_THROW(dev.launch_sync(mod.kernel("inner"), 16), Error);
  // Entering at the interior label skips the movsr, so every thread's %r0
  // is 0 and the store lands at out[0] -- with the $out base patched in.
  dev.launch_sync(mod.kernel("inner"), 16, KernelArgs().arg(out));
  EXPECT_EQ(out.at(0), 9u);
}

TEST(KernelAbi, BatchQueueArgsMustBindTheQueueBuffers) {
  Device dev(DeviceDescriptor::simt_core(small_cfg(64, 4096)));
  auto in = dev.alloc<std::uint32_t>(64);
  auto out = dev.alloc<std::uint32_t>(64);
  auto other = dev.alloc<std::uint32_t>(64);
  Module& mod = dev.load_module(kernels::scale_abi());
  const auto kernel = mod.kernel("scale");
  // Arguments pointing the kernel at a different buffer than the queue
  // stages through would silently serve garbage -- refused up front.
  EXPECT_THROW(BatchQueue(dev.stream(), kernel, in, out, 16,
                          KernelArgs().arg(other).arg(out)
                              .scalar(2).scalar(0)),
               Error);
  // Swapped direction: scale declares .reads in / .writes out, so binding
  // the queue's out buffer to the read parameter is refused too.
  EXPECT_THROW(BatchQueue(dev.stream(), kernel, in, out, 16,
                          KernelArgs().arg(out).arg(in)
                              .scalar(2).scalar(0)),
               Error);
  BatchQueue ok(dev.stream(), kernel, in, out, 16,
                KernelArgs().arg(in).arg(out).scalar(2).scalar(0));
}

TEST(KernelAbi, ParamWindowCollisionThrows) {
  // A buffer bound into (or allocated over) the reserved window is refused.
  Device dev(DeviceDescriptor::simt_core(small_cfg(64, 256)));
  auto a = dev.alloc<std::uint32_t>(64);
  auto b = dev.alloc<std::uint32_t>(64);
  auto c = dev.alloc<std::uint32_t>(64);
  Module& mod = dev.load_module(kernels::vecadd_abi());
  const auto kernel = mod.kernel("vecadd");
  dev.launch_sync(kernel, 16, KernelArgs().arg(a).arg(b).arg(c));

  // 224..256 is the window on a 256-word device; filling the arena up to
  // it makes the next ABI launch throw.
  dev.alloc<std::uint32_t>(256 - 192 - Device::kParamWindowWords + 1);
  EXPECT_THROW(dev.launch_sync(kernel, 16, KernelArgs().arg(a).arg(b).arg(c)),
               Error);
}

// ---- parameter window + differential across backends -----------------------

/// Launch vecadd + saxpy (ABI kernels) on one device; return the outputs
/// and the observed parameter window.
struct AbiDifferential {
  std::vector<std::uint32_t> vecadd;
  std::vector<std::int32_t> saxpy;
  std::vector<std::uint32_t> window;
};

AbiDifferential run_abi_differential(Device& dev, unsigned n) {
  auto a = dev.alloc<std::uint32_t>(n);
  auto b = dev.alloc<std::uint32_t>(n);
  auto c = dev.alloc<std::uint32_t>(n);
  auto x = dev.alloc<std::int32_t>(n);
  auto y = dev.alloc<std::int32_t>(n);
  auto out = dev.alloc<std::int32_t>(n);

  std::vector<std::uint32_t> ha(n), hb(n);
  std::vector<std::int32_t> hx(n), hy(n);
  for (unsigned i = 0; i < n; ++i) {
    ha[i] = 3 * i + 1;
    hb[i] = 1000 + i;
    hx[i] = static_cast<std::int32_t>(i) - static_cast<std::int32_t>(n / 2);
    hy[i] = 7 * static_cast<std::int32_t>(i) - 100;
  }

  const std::int32_t alpha = 3 << 14;  // 0.75 in Q16
  Module& add_mod = dev.load_module(kernels::vecadd_abi());
  Module& saxpy_mod = dev.load_module(kernels::saxpy_abi(16));

  AbiDifferential result;
  result.vecadd.resize(n);
  result.saxpy.resize(n);
  auto& stream = dev.stream();
  stream.copy_in(a, std::span<const std::uint32_t>(ha));
  stream.copy_in(b, std::span<const std::uint32_t>(hb));
  stream.copy_in(x, std::span<const std::int32_t>(hx));
  stream.copy_in(y, std::span<const std::int32_t>(hy));
  stream.launch(add_mod.kernel("vecadd"), n,
                KernelArgs().arg(a).arg(b).arg(c));
  stream.launch(saxpy_mod.kernel("saxpy"), n,
                KernelArgs().arg(x).arg(y).arg(out).scalar(
                    static_cast<std::uint32_t>(alpha)));
  stream.copy_out(c, std::span<std::uint32_t>(result.vecadd));
  stream.copy_out(out, std::span<std::int32_t>(result.saxpy));
  stream.synchronize();

  // The last launch's binding is recorded in the parameter window.
  result.window.resize(4);
  dev.read_words(dev.param_window_base(), result.window);
  return result;
}

TEST(KernelAbi, ParamWindowLaunchesAgreeOnEveryBackend) {
  constexpr unsigned kN = 192;  // not a multiple of the core sizes below

  Device core_dev(DeviceDescriptor::simt_core(small_cfg(256, 2048)));
  Device multi_dev(DeviceDescriptor::multi_core(3, small_cfg(64, 2048)));
  Device scalar_dev(DeviceDescriptor::scalar_cpu(scalar_cfg(2048)));
  const auto core = run_abi_differential(core_dev, kN);
  const auto multi = run_abi_differential(multi_dev, kN);
  const auto scalar = run_abi_differential(scalar_dev, kN);

  for (unsigned i = 0; i < kN; ++i) {
    const std::uint32_t add_golden = (3 * i + 1) + (1000 + i);
    const std::int64_t prod =
        static_cast<std::int64_t>(3 << 14) *
        (static_cast<std::int32_t>(i) - static_cast<std::int32_t>(kN / 2));
    const std::int32_t saxpy_golden =
        static_cast<std::int32_t>(prod >> 16) +
        (7 * static_cast<std::int32_t>(i) - 100);
    ASSERT_EQ(core.vecadd[i], add_golden) << i;
    ASSERT_EQ(core.saxpy[i], saxpy_golden) << i;
  }
  EXPECT_EQ(multi.vecadd, core.vecadd);
  EXPECT_EQ(multi.saxpy, core.saxpy);
  EXPECT_EQ(scalar.vecadd, core.vecadd);
  EXPECT_EQ(scalar.saxpy, core.saxpy);

  // Window word i = argument i of the last (saxpy) launch: x, y, out
  // buffer bases (identical allocation order on every backend) and alpha.
  EXPECT_EQ(core.window, multi.window);
  EXPECT_EQ(core.window, scalar.window);
  EXPECT_EQ(core.window[3], static_cast<std::uint32_t>(3 << 14));
}

// ---- footprint-driven staging ----------------------------------------------

/// Alternate two independent ABI workloads on one multicore device and
/// return (sum of staged words, sum of skipped words). With footprints
/// declared, each launch skips the stale ranges belonging to the OTHER
/// workload; with the directives stripped, every launch restages them.
std::pair<std::uint64_t, std::uint64_t> run_interleaved(
    bool declare_footprints, std::vector<std::uint32_t>* out_result) {
  const unsigned kN = 128;
  Device dev(DeviceDescriptor::multi_core(2, small_cfg(64, 2048)));
  auto a1 = dev.alloc<std::uint32_t>(kN);
  auto b1 = dev.alloc<std::uint32_t>(kN);
  auto c1 = dev.alloc<std::uint32_t>(kN);
  auto in2 = dev.alloc<std::uint32_t>(kN);
  auto out2 = dev.alloc<std::uint32_t>(kN);

  std::string add_src = kernels::vecadd_abi();
  std::string scale_src = kernels::scale_abi();
  if (!declare_footprints) {
    // Strip the .reads/.writes declarations: binding still works, but the
    // staging path falls back to conservative restaging.
    for (auto* src : {&add_src, &scale_src}) {
      std::string stripped;
      std::istringstream in(*src);
      std::string line;
      while (std::getline(in, line)) {
        if (line.rfind(".reads", 0) == 0 || line.rfind(".writes", 0) == 0) {
          continue;
        }
        stripped += line + "\n";
      }
      *src = stripped;
    }
  }
  Module& add_mod = dev.load_module(add_src);
  Module& scale_mod = dev.load_module(scale_src);

  std::vector<std::uint32_t> h1(kN), h2(kN);
  std::uint64_t staged = 0, skipped = 0;
  for (unsigned round = 0; round < 4; ++round) {
    for (unsigned i = 0; i < kN; ++i) {
      h1[i] = round * 100 + i;
      h2[i] = round * 7 + i;
    }
    // Host updates BOTH workloads' inputs, then runs them back to back:
    // each launch sees the other workload's fresh writes as stale words it
    // has no use for.
    a1.write(h1);
    b1.write(h1);
    in2.write(h2);
    const auto s1 = dev.launch_sync(add_mod.kernel("vecadd"), kN,
                                    KernelArgs().arg(a1).arg(b1).arg(c1));
    const auto s2 = dev.launch_sync(scale_mod.kernel("scale"), kN,
                                    KernelArgs().arg(in2).arg(out2)
                                        .scalar(3).scalar(round));
    staged += s1.staged_words + s2.staged_words;
    skipped += s1.staged_words_skipped + s2.staged_words_skipped;
    for (unsigned i = 0; i < kN; ++i) {
      EXPECT_EQ(c1.at(i), 2 * h1[i]) << "round " << round << " i " << i;
      EXPECT_EQ(out2.at(i), 3 * h2[i] + round) << "round " << round;
    }
  }
  if (out_result != nullptr) {
    *out_result = out2.read();
  }
  return {staged, skipped};
}

TEST(FootprintStaging, DeclaredReadSetsStageFewerWordsThanConservative) {
  std::vector<std::uint32_t> declared_result, conservative_result;
  const auto declared = run_interleaved(true, &declared_result);
  const auto conservative = run_interleaved(false, &conservative_result);

  // Same results either way; strictly less staging traffic and a nonzero
  // skip count with footprints declared.
  EXPECT_EQ(declared_result, conservative_result);
  EXPECT_LT(declared.first, conservative.first);
  EXPECT_GT(declared.second, 0u);
  EXPECT_EQ(conservative.second, 0u);
}

TEST(FootprintStaging, ExtentLimitsTheDeclaredRange) {
  // A kernel that declares it reads only the first 8 words of its input:
  // staging a 2-core launch ships at most those 8 (+ window + output)
  // words per core even though the whole buffer went stale.
  Device dev(DeviceDescriptor::multi_core(2, small_cfg(16, 1024)));
  auto in = dev.alloc<std::uint32_t>(256);
  auto out = dev.alloc<std::uint32_t>(16);
  Module& mod = dev.load_module(
      ".kernel head8\n"
      ".param in buffer\n"
      ".param out buffer\n"
      ".reads in+8\n"
      ".writes out\n"
      "movsr %r0, %tid\n"
      "movi %r1, 7\n"
      "and %r1, %r0, %r1\n"
      "lds %r2, [%r1 + $in]\n"
      "sts [%r0 + $out], %r2\n"
      "exit\n");
  std::vector<std::uint32_t> host(256);
  std::iota(host.begin(), host.end(), 5u);
  in.write(host);  // all 256 words go stale on both cores

  const auto stats = dev.launch_sync(mod.kernel("head8"), 16,
                                     KernelArgs().arg(in).arg(out));
  for (unsigned i = 0; i < 16; ++i) {
    ASSERT_EQ(out.at(i), host[i % 8]) << i;
  }
  // Conservative would have staged 256 words per core; the declared read
  // set keeps it to the 8 input words (plus the fresh parameter window).
  EXPECT_GT(stats.staged_words_skipped, 0u);
  EXPECT_LT(stats.staged_words, 2u * 64u);
}

TEST(FootprintStaging, PerThreadSlicesStagePerCoreSlices) {
  // An elementwise kernel with @tid footprints on a 2-core device: each
  // core must stage only its thread slice of the input, not the whole
  // range. The whole-launch declaration (the @tid markers downgraded)
  // ships the full input to BOTH cores.
  constexpr unsigned kN = 256;
  const auto run = [](bool sliced) {
    Device dev(DeviceDescriptor::multi_core(2, small_cfg(128, 2048)));
    auto in = dev.alloc<std::uint32_t>(kN);
    auto out = dev.alloc<std::uint32_t>(kN);
    std::string src = kernels::scale_abi();
    if (!sliced) {
      // ".reads in@tid" -> ".reads in": same staging direction, no
      // per-thread scaling.
      std::string stripped;
      for (std::size_t pos = 0; pos < src.size();) {
        const auto at = src.find("@tid", pos);
        stripped += src.substr(pos, at - pos);
        pos = at == std::string::npos ? src.size() : at + 4;
      }
      src = stripped;
    }
    Module& mod = dev.load_module(src);
    std::vector<std::uint32_t> host(kN);
    std::iota(host.begin(), host.end(), 9u);
    in.write(host);  // the whole input goes stale on both cores
    const auto stats = dev.launch_sync(
        mod.kernel("scale"), kN,
        KernelArgs().arg(in).arg(out).scalar(2).scalar(1));
    for (unsigned i = 0; i < kN; ++i) {
      EXPECT_EQ(out.at(i), 2 * host[i] + 1) << i << " sliced=" << sliced;
    }
    return stats.staged_words;
  };
  const auto sliced = run(true);
  const auto whole = run(false);
  // Whole-launch ships ~kN input words to each of the 2 cores; sliced
  // ships each core ~its half. (Exact counts include the param window and
  // RangeSet burst coalescing, so compare, don't pin.)
  EXPECT_LT(sliced, whole);
  EXPECT_LT(sliced, kN + kN / 2 + 64);
  EXPECT_GE(whole, 2u * kN);
}

TEST(FootprintStaging, StridedChunksStagePerCoreChunks) {
  // The chunked reduce kernel: thread t reads in[t*P, (t+1)*P). With the
  // strided declaration (`in@tid*P+P`) a 2-core launch stages each core
  // only its chunk slice; with the whole-buffer downgrade both cores ship
  // the entire input.
  constexpr unsigned kChunk = 4;
  constexpr unsigned kN = 512;
  constexpr unsigned kPartials = kN / kChunk;
  const auto run = [](bool strided) {
    Device dev(DeviceDescriptor::multi_core(2, small_cfg(64, 2048)));
    auto in = dev.alloc<std::uint32_t>(kN);
    auto out = dev.alloc<std::uint32_t>(kPartials);
    std::string src = kernels::reduce_abi(kChunk);
    if (!strided) {
      // ".reads in@tid*4+4" -> ".reads in": the pre-stride declaration.
      const auto pos = src.find("in@tid*");
      EXPECT_NE(pos, std::string::npos) << src;
      const auto eol = src.find('\n', pos);
      src = src.substr(0, pos) + "in" + src.substr(eol);
    }
    Module& mod = dev.load_module(src);
    std::vector<std::uint32_t> host(kN);
    std::iota(host.begin(), host.end(), 1u);
    in.write(host);  // the whole input goes stale on both cores
    const auto stats = dev.launch_sync(mod.kernel("reduce"), kPartials,
                                       KernelArgs().arg(in).arg(out));
    for (unsigned t = 0; t < kPartials; ++t) {
      std::uint32_t want = 0;
      for (unsigned j = 0; j < kChunk; ++j) {
        want += host[t * kChunk + j];
      }
      EXPECT_EQ(out.at(t), want) << t << " strided=" << strided;
    }
    return stats.staged_words;
  };
  const std::uint64_t strided_words = run(true);
  const std::uint64_t whole_words = run(false);
  // Whole-buffer ships ~kN input words to each of the 2 cores; the strided
  // declaration ships each core ~its half of the chunks.
  EXPECT_LT(strided_words, whole_words);
  EXPECT_GE(whole_words, 2u * kN);
  EXPECT_LT(strided_words, kN + kN / 2 + 64);
}

TEST(KernelMetadata, StridedSidecarRoundTrips) {
  // reduce_abi declares the chunked `in@tid*P+P` form; the sidecar text
  // must carry the stride through emit -> parse unchanged.
  const auto program = assembler::assemble(kernels::reduce_abi(4));
  const auto text = core::kernel_metadata_text(program);
  EXPECT_NE(text.find(".reads in@tid*4+4"), std::string::npos) << text;
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  const auto parsed = core::parse_kernel_metadata(lines);
  EXPECT_EQ(parsed, program.kernels());
}

// ---- host-thread-safe submission -------------------------------------------

TEST(ConcurrentSubmit, WorkerThreadsShareOneStream) {
  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 8;
  constexpr unsigned kN = 32;
  Device dev(DeviceDescriptor::simt_core(small_cfg(64, 4096)));
  Module& mod = dev.load_module(kernels::scale_abi());
  const auto kernel = mod.kernel("scale");

  // Each worker owns a private in/out buffer pair and repeatedly enqueues
  // copy-in + launch + copy-out on the SHARED default stream.
  std::vector<Buffer<std::uint32_t>> ins, outs;
  for (unsigned t = 0; t < kThreads; ++t) {
    ins.push_back(dev.alloc<std::uint32_t>(kN));
    outs.push_back(dev.alloc<std::uint32_t>(kN));
  }
  std::vector<std::vector<std::uint32_t>> results(
      kThreads, std::vector<std::uint32_t>(kN));
  auto& stream = dev.stream();

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<std::uint32_t> host(kN);
      for (unsigned r = 0; r < kPerThread; ++r) {
        for (unsigned i = 0; i < kN; ++i) {
          host[i] = t * 1000 + i;
        }
        stream.copy_in(ins[t], std::span<const std::uint32_t>(host));
        stream.launch(kernel, kN,
                      KernelArgs().arg(ins[t]).arg(outs[t])
                          .scalar(2).scalar(t));
        stream.copy_out(outs[t], std::span<std::uint32_t>(results[t]));
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  stream.synchronize();
  EXPECT_EQ(stream.pending(), 0u);
  for (unsigned t = 0; t < kThreads; ++t) {
    for (unsigned i = 0; i < kN; ++i) {
      ASSERT_EQ(results[t][i], 2 * (t * 1000 + i) + t) << t << " " << i;
    }
  }
}

TEST(ConcurrentSubmit, WorkerThreadsShareOneBatchQueue) {
  constexpr unsigned kWorkers = 4;
  constexpr unsigned kPerWorker = 6;
  constexpr unsigned kReqWords = 16;
  Device dev(DeviceDescriptor::simt_core(small_cfg(64, 4096)));
  auto in = dev.alloc<std::uint32_t>(kReqWords * 8);
  auto out = dev.alloc<std::uint32_t>(kReqWords * 8);
  Module& mod = dev.load_module(kernels::scale_abi());
  BatchQueue queue(dev.stream(), mod.kernel("scale"), in, out, kReqWords,
                   KernelArgs().arg(in).arg(out).scalar(5).scalar(1));

  std::vector<std::vector<BatchQueue::Ticket>> tickets(kWorkers);
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (unsigned r = 0; r < kPerWorker; ++r) {
        std::vector<std::uint32_t> request(kReqWords);
        for (unsigned i = 0; i < kReqWords; ++i) {
          request[i] = w * 10000 + r * 100 + i;
        }
        tickets[w].push_back(
            queue.submit(std::span<const std::uint32_t>(request)));
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  queue.flush();
  dev.stream().synchronize();

  EXPECT_EQ(queue.stats().requests, kWorkers * kPerWorker);
  EXPECT_GT(queue.stats().launches_saved(), 0u);
  for (unsigned w = 0; w < kWorkers; ++w) {
    for (unsigned r = 0; r < kPerWorker; ++r) {
      const auto result = tickets[w][r].result();
      for (unsigned i = 0; i < kReqWords; ++i) {
        ASSERT_EQ(result[i], 5 * (w * 10000 + r * 100 + i) + 1)
            << w << " " << r << " " << i;
      }
    }
  }
}

// ---- scalar-backend entry points -------------------------------------------

TEST(ScalarEntry, KernelEntryLabelsWorkOnEveryBackend) {
  // A module with two kernels; launching the second by name must start at
  // its entry on all three backends (the scalar sweep included).
  const std::string src =
      ".kernel first\n"
      ".param out buffer\n"
      ".writes out\n"
      "movsr %r0, %tid\n"
      "movi %r1, 111\n"
      "sts [%r0 + $out], %r1\n"
      "exit\n"
      ".kernel second\n"
      ".param out buffer\n"
      ".writes out\n"
      "movsr %r0, %tid\n"
      "movi %r1, 222\n"
      "sts [%r0 + $out], %r1\n"
      "exit\n";
  const auto run = [&](DeviceDescriptor desc) {
    Device dev(desc);
    auto out = dev.alloc<std::uint32_t>(16);
    Module& mod = dev.load_module(src);
    EXPECT_GT(mod.kernel("second").entry, 0u);
    dev.launch_sync(mod.kernel("second"), 16, KernelArgs().arg(out));
    return out.read();
  };
  const auto core = run(DeviceDescriptor::simt_core(small_cfg(16, 512)));
  const auto multi = run(DeviceDescriptor::multi_core(2, small_cfg(16, 512)));
  const auto scalar = run(DeviceDescriptor::scalar_cpu(scalar_cfg(512)));
  for (unsigned i = 0; i < 16; ++i) {
    ASSERT_EQ(core[i], 222u) << i;
  }
  EXPECT_EQ(multi, core);
  EXPECT_EQ(scalar, core);
}

TEST(ScalarEntry, OutOfProgramEntryThrows) {
  baseline::ScalarSoftCpu cpu(scalar_cfg(512));
  cpu.load_program(assembler::assemble("exit\n"));
  EXPECT_THROW(cpu.run(5), Error);
}

// ---- metadata round trip ---------------------------------------------------

TEST(KernelMetadata, SidecarTextRoundTrips) {
  const auto program = assembler::assemble(kernels::fir_abi(4, 8));
  ASSERT_EQ(program.kernels().size(), 1u);
  const auto text = core::kernel_metadata_text(program);
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  const auto parsed = core::parse_kernel_metadata(lines);
  EXPECT_EQ(parsed, program.kernels());
}

}  // namespace
}  // namespace simt::runtime
