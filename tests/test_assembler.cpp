// Tests for the two-pass assembler: syntax coverage, label resolution,
// directives, and diagnostics.
#include "asm/assembler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "isa/isa.hpp"

namespace simt::assembler {
namespace {

using isa::Format;
using isa::Guard;
using isa::Opcode;

/// Expect assembly failure whose message contains `needle`.
void expect_error(const std::string& src, const std::string& needle) {
  try {
    assemble(src);
    FAIL() << "expected assembly of \"" << src << "\" to fail";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(Assembler, EmptyAndCommentOnlySource) {
  EXPECT_TRUE(assemble("").empty());
  EXPECT_TRUE(assemble("// nothing\n; semicolons too\n# hashes\n").empty());
}

TEST(Assembler, BasicThreeOperandForm) {
  const auto p = assemble("add %r3, %r1, %r2\n");
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.at(0).op, Opcode::ADD);
  EXPECT_EQ(p.at(0).rd, 3);
  EXPECT_EQ(p.at(0).ra, 1);
  EXPECT_EQ(p.at(0).rb, 2);
}

TEST(Assembler, ImmediateForms) {
  const auto p = assemble(
      "movi %r1, 42\n"
      "movi %r2, -7\n"
      "movi %r3, 0xDEAD\n"
      "addi %r4, %r1, 100\n"
      "subi %r5, %r1, -100\n");
  EXPECT_EQ(p.at(0).imm, 42);
  EXPECT_EQ(p.at(1).imm, -7);
  EXPECT_EQ(p.at(2).imm, 0xDEAD);
  EXPECT_EQ(p.at(3).imm, 100);
  EXPECT_EQ(p.at(4).imm, -100);
}

TEST(Assembler, FullWidthImmediates) {
  const auto p = assemble("movi %r0, 0x7FFFFFFF\nmovi %r1, -2147483648\n");
  EXPECT_EQ(p.at(0).imm, 0x7FFFFFFF);
  EXPECT_EQ(p.at(1).imm, INT32_MIN);
}

TEST(Assembler, GuardPrefixes) {
  const auto p = assemble(
      "@p0 add %r1, %r1, %r2\n"
      "@!p3 sub %r1, %r1, %r2\n"
      "@p2 lds %r1, [%r2 + 4]\n");
  EXPECT_EQ(p.at(0).guard, Guard::IfTrue);
  EXPECT_EQ(p.at(0).gpred, 0);
  EXPECT_EQ(p.at(1).guard, Guard::IfFalse);
  EXPECT_EQ(p.at(1).gpred, 3);
  EXPECT_EQ(p.at(2).guard, Guard::IfTrue);
  EXPECT_EQ(p.at(2).gpred, 2);
}

TEST(Assembler, GuardRejectedOnControlFlow) {
  expect_error("@p0 bra somewhere\nsomewhere: exit\n",
               "guards are only allowed");
  expect_error("@p1 exit\n", "guards are only allowed");
}

TEST(Assembler, MemoryOperands) {
  const auto p = assemble(
      "lds %r1, [%r2 + 16]\n"
      "lds %r1, [%r2 - 4]\n"
      "lds %r1, [%r2]\n"
      "sts [%r3 + 8], %r4\n"
      "sts [%r3], %r4\n");
  EXPECT_EQ(p.at(0).imm, 16);
  EXPECT_EQ(p.at(1).imm, -4);
  EXPECT_EQ(p.at(2).imm, 0);
  EXPECT_EQ(p.at(3).op, Opcode::STS);
  EXPECT_EQ(p.at(3).rd, 4);  // store data register
  EXPECT_EQ(p.at(3).ra, 3);  // address base
  EXPECT_EQ(p.at(3).imm, 8);
  EXPECT_EQ(p.at(4).imm, 0);
}

TEST(Assembler, LabelsForwardAndBackward) {
  const auto p = assemble(
      "start:\n"
      "  movi %r0, 1\n"
      "  bra done\n"
      "  movi %r0, 2\n"
      "done:\n"
      "  bra start\n");
  EXPECT_EQ(p.at(1).imm, 3);  // forward reference to 'done'
  EXPECT_EQ(p.at(3).imm, 0);  // backward reference to 'start'
  EXPECT_EQ(p.labels().at("start"), 0u);
  EXPECT_EQ(p.labels().at("done"), 3u);
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  const auto p = assemble("loop: addi %r1, %r1, 1\nbra loop\n");
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.at(1).imm, 0);
}

TEST(Assembler, PredicateInstructions) {
  const auto p = assemble(
      "setp.lt %p0, %r1, %r2\n"
      "setp.geu %p3, %r4, %r5\n"
      "pand %p0, %p1, %p2\n"
      "pnot %p1, %p0\n"
      "selp %r1, %r2, %r3, %p0\n"
      "brp %p0, target\n"
      "target: brn %p2, target\n");
  EXPECT_EQ(p.at(0).op, Opcode::SETP_LT);
  EXPECT_EQ(p.at(0).pd, 0);
  EXPECT_EQ(p.at(1).op, Opcode::SETP_GEU);
  EXPECT_EQ(p.at(1).pd, 3);
  EXPECT_EQ(p.at(2).pa, 1);
  EXPECT_EQ(p.at(2).pb, 2);
  EXPECT_EQ(p.at(4).op, Opcode::SELP);
  EXPECT_EQ(p.at(4).pa, 0);
  EXPECT_EQ(p.at(5).op, Opcode::BRP);
  EXPECT_EQ(p.at(5).imm, 6);
}

TEST(Assembler, LoopInstructions) {
  const auto p = assemble(
      "loopi 10, body_end\n"
      "  addi %r1, %r1, 1\n"
      "body_end:\n"
      "  loop %r7, reg_end\n"
      "  addi %r2, %r2, 1\n"
      "reg_end:\n"
      "  exit\n");
  EXPECT_EQ(p.at(0).op, Opcode::LOOPI);
  EXPECT_EQ((p.at(0).imm >> 16) & 0xffff, 10);
  EXPECT_EQ(p.at(0).imm & 0xffff, 2);
  EXPECT_EQ(p.at(2).op, Opcode::LOOP);
  EXPECT_EQ(p.at(2).ra, 7);
  EXPECT_EQ(p.at(2).imm, 4);
}

TEST(Assembler, SpecialRegisters) {
  const auto p = assemble(
      "movsr %r0, %tid\n"
      "movsr %r1, %ntid\n"
      "movsr %r2, %nsp\n"
      "movsr %r3, %lane\n"
      "movsr %r4, %row\n"
      "movsr %r5, %smid\n");
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(p.at(static_cast<std::size_t>(i)).imm, i);
  }
}

TEST(Assembler, ThreadScaling) {
  const auto p = assemble("sett %r9\nsetti 256\n");
  EXPECT_EQ(p.at(0).op, Opcode::SETT);
  EXPECT_EQ(p.at(0).ra, 9);
  EXPECT_EQ(p.at(1).op, Opcode::SETTI);
  EXPECT_EQ(p.at(1).imm, 256);
}

TEST(Assembler, EquDirective) {
  const auto p = assemble(
      ".equ N 64\n"
      ".equ BASE 0x100\n"
      ".equ ALIAS N\n"
      "movi %r1, N\n"
      "lds %r2, [%r3 + BASE]\n"
      "setti ALIAS\n");
  EXPECT_EQ(p.at(0).imm, 64);
  EXPECT_EQ(p.at(1).imm, 0x100);
  EXPECT_EQ(p.at(2).imm, 64);
}

TEST(Assembler, DiagnosticsCarryLineNumbers) {
  expect_error("add %r1, %r2\n", "line 1");
  expect_error("nop\nbogus %r1, %r2, %r3\n", "line 2");
}

TEST(Assembler, DiagnosticKinds) {
  expect_error("bogus %r1, %r2, %r3\n", "unknown mnemonic");
  expect_error("bra nowhere\n", "undefined label");
  expect_error("x: nop\nx: nop\n", "duplicate label");
  expect_error("add %r1, %r2, 5\n", "expected a register");
  expect_error("movi %r999, 1\n", "register index out of range");
  expect_error("setp.lt %p9, %r0, %r1\n", "predicate index out of range");
  expect_error("@p9 add %r0, %r0, %r0\n", "guard predicate out of range");
  expect_error("movi %r1, 99999999999999\n", "does not fit in 32 bits");
  expect_error("setti 0\n", "thread count");
  expect_error("setti 5000\n", "thread count");
  expect_error("loopi 70000, x\nx: nop\n", "loop count");
  expect_error(".bogus 1\n", "unknown directive");
  expect_error(".equ A 1\n.equ A 2\n", "duplicate .equ");
  expect_error("movi %r1, UNDEF_CONST\n", "unknown constant");
  expect_error("add %r1, %r2, %r3 garbage\n", "trailing junk");
  expect_error("lds %r1, [%r2 + ]\n", "malformed number");
  expect_error("movsr %r1, %bogus\n", "unknown register token");
}

TEST(Assembler, RoundTripThroughEncoding) {
  const std::string src =
      "movsr %r0, %tid\n"
      "movi %r1, 10\n"
      "setp.lt %p0, %r0, %r1\n"
      "@p0 add %r2, %r0, %r1\n"
      "lds %r3, [%r2 + 32]\n"
      "sts [%r2], %r3\n"
      "exit\n";
  const auto p = assemble(src);
  const auto image = p.encode();
  const auto back = core::Program::decode(image);
  ASSERT_EQ(back.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(back.at(i), p.at(i)) << "pc " << i;
  }
}

TEST(Assembler, ListingShowsLabelsAndDisassembly) {
  const auto p = assemble("entry:\n  movi %r1, 5\n  exit\n");
  const std::string listing = p.listing();
  EXPECT_NE(listing.find("entry:"), std::string::npos);
  EXPECT_NE(listing.find("movi %r1, 5"), std::string::npos);
  EXPECT_NE(listing.find("exit"), std::string::npos);
}

// ---- kernel ABI metadata directives ----------------------------------------

TEST(AssemblerAbi, KernelDirectiveDefinesEntryAndLabel) {
  const auto p = assemble(
      "movi %r1, 1\n"
      "exit\n"
      ".kernel k2\n"
      "movi %r1, 2\n"
      "exit\n");
  ASSERT_EQ(p.kernels().size(), 1u);
  EXPECT_EQ(p.kernels()[0].name, "k2");
  EXPECT_EQ(p.kernels()[0].entry, 2u);
  EXPECT_EQ(p.labels().at("k2"), 2u);  // the name is a label too
  EXPECT_EQ(p.find_kernel("k2"), &p.kernels()[0]);
  EXPECT_EQ(p.kernel_at_entry(2), &p.kernels()[0]);
  EXPECT_EQ(p.find_kernel("missing"), nullptr);
}

TEST(AssemblerAbi, ParamRefsRecordRelocationsWithAddends) {
  const auto p = assemble(
      ".kernel k\n"
      ".param a buffer\n"
      ".param n scalar\n"
      "movsr %r0, %tid\n"
      "lds %r1, [%r0 + $a]\n"
      "lds %r2, [%r0 + $a + 3]\n"
      "movi %r3, $n\n"
      "addi %r4, %r4, $n\n"
      "exit\n");
  const auto& k = p.kernels().at(0);
  ASSERT_EQ(k.params.size(), 2u);
  EXPECT_EQ(k.params[0].kind, core::KernelParam::Kind::Buffer);
  EXPECT_EQ(k.params[1].kind, core::KernelParam::Kind::Scalar);
  ASSERT_EQ(k.refs.size(), 4u);
  EXPECT_EQ(k.refs[0], (core::ParamRef{1, 0, 0}));
  EXPECT_EQ(k.refs[1], (core::ParamRef{2, 0, 3}));
  EXPECT_EQ(k.refs[2], (core::ParamRef{3, 1, 0}));
  EXPECT_EQ(k.refs[3], (core::ParamRef{4, 1, 0}));
  // Unpatched instructions carry only the constant addend.
  EXPECT_EQ(p.at(1).imm, 0);
  EXPECT_EQ(p.at(2).imm, 3);
}

TEST(AssemblerAbi, FootprintsParseWholeAndExtent) {
  const auto p = assemble(
      ".equ HALF 32\n"
      ".kernel k\n"
      ".param in buffer\n"
      ".param out buffer\n"
      ".reads in\n"
      ".reads in+HALF\n"
      ".writes out+8\n"
      "exit\n");
  const auto& k = p.kernels().at(0);
  ASSERT_EQ(k.reads.size(), 2u);
  EXPECT_EQ(k.reads[0], (core::Footprint{0, 0}));   // whole bound buffer
  EXPECT_EQ(k.reads[1], (core::Footprint{0, 32}));  // .equ-resolved extent
  ASSERT_EQ(k.writes.size(), 1u);
  EXPECT_EQ(k.writes[0], (core::Footprint{1, 8}));
}

TEST(AssemblerAbi, PerThreadFootprintsParseWindowAndDefault) {
  const auto p = assemble(
      ".kernel k\n"
      ".param x buffer\n"
      ".param y buffer\n"
      ".reads x@tid+16\n"   // FIR-style tap window
      ".writes y@tid\n"     // elementwise, default 1-word window
      "exit\n");
  const auto& k = p.kernels().at(0);
  ASSERT_EQ(k.reads.size(), 1u);
  EXPECT_EQ(k.reads[0], (core::Footprint{0, 16, true}));
  ASSERT_EQ(k.writes.size(), 1u);
  EXPECT_EQ(k.writes[0], (core::Footprint{1, 1, true}));
}

TEST(AssemblerAbi, PerThreadFootprintDiagnostics) {
  expect_error(".kernel k\n.param a buffer\n.reads a@warp\nexit\n",
               "must be @tid");
  expect_error(".kernel k\n.param n scalar\n.reads n@tid\nexit\n",
               "is a scalar");
  expect_error(".kernel k\n.param a buffer\n.reads a@tid+0\nexit\n",
               "positive word count");
}

TEST(AssemblerAbi, StridedPerThreadFootprintsParse) {
  const auto p = assemble(
      ".equ CHUNK 4\n"
      ".kernel k\n"
      ".param in buffer\n"
      ".param out buffer\n"
      ".reads in@tid*CHUNK+4\n"  // chunked [t*4, (t+1)*4)
      ".reads in@tid*8\n"        // stride 8, default 1-word window
      ".writes out@tid\n"        // stride defaults to 1
      "exit\n");
  const auto& k = p.kernels().at(0);
  ASSERT_EQ(k.reads.size(), 2u);
  EXPECT_EQ(k.reads[0], (core::Footprint{0, 4, true, 4}));
  EXPECT_EQ(k.reads[1], (core::Footprint{0, 1, true, 8}));
  ASSERT_EQ(k.writes.size(), 1u);
  EXPECT_EQ(k.writes[0], (core::Footprint{1, 1, true, 1}));
}

TEST(AssemblerAbi, StridedFootprintDiagnostics) {
  expect_error(".kernel k\n.param a buffer\n.reads a@tid*0\nexit\n",
               "positive word count");
  expect_error(".kernel k\n.param a buffer\n.reads a*4\nexit\n",
               "stride needs the @tid modifier");
}

TEST(AssemblerAbi, DirectiveDiagnostics) {
  expect_error(".param a buffer\nexit\n", "before any .kernel");
  expect_error(".reads a\nexit\n", "before any .kernel");
  expect_error(".kernel k\n.param a buffer\n.param a buffer\nexit\n",
               "duplicate .param");
  expect_error(".kernel k\nexit\n.kernel k\nexit\n", "duplicate .kernel");
  expect_error(".kernel k\n.param a widget\nexit\n", "buffer or scalar");
  expect_error(".kernel k\n.reads a\nexit\n", "undeclared parameter");
  expect_error(".kernel k\n.param n scalar\n.reads n\nexit\n",
               "is a scalar");
  expect_error(".kernel k\n.param a buffer\n.reads a+0\nexit\n",
               "positive word count");
  expect_error("lds %r1, [%r0 + $a]\n", "outside a .kernel");
  expect_error(".kernel k\nlds %r1, [%r0 + $a]\n", "undeclared parameter");
  expect_error(
      ".kernel k\n.param a buffer\n.param b buffer\n"
      "lds %r1, [%r0 + $a + $b]\n",
      "at most one $parameter");
  expect_error(".kernel k\n.param a buffer\nmovi %r1, -$a\n",
               "'-$param' is not supported");
  // Immediate terms must be explicitly signed -- juxtaposition stays an
  // error, as it was before $param expressions existed.
  expect_error("movi %r1, 1 2\n", "expected '+' or '-'");
  expect_error(".kernel k\n.param a buffer\nlds %r1, [%r0 + $a 3]\n",
               "expected '+' or '-'");
}

}  // namespace
}  // namespace simt::assembler
