// Tests for the asynchronous execution engine: the device scheduler and its
// modeled copy/exec timeline, multi-stream execution with cross-stream
// event waits, Event hardening, BatchQueue request coalescing, the
// multicore shard-map staging path, grid-split edge cases on every backend,
// and MemoryPool alignment.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "runtime/batch.hpp"
#include "runtime/buffer.hpp"
#include "runtime/device.hpp"
#include "runtime/module.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stream.hpp"

namespace simt::runtime {
namespace {

core::CoreConfig small_cfg(unsigned threads = 64, unsigned mem_words = 2048) {
  core::CoreConfig c;
  c.max_threads = threads;
  c.shared_mem_words = mem_words;
  c.predicates_enabled = true;
  return c;
}

/// out[tid] = 3 * in[tid] + 7 -- the elementwise shape BatchQueue requires.
std::string affine_kernel(std::uint32_t in_base, std::uint32_t out_base) {
  return "movsr %r0, %tid\n"
         "lds %r1, [%r0 + " + std::to_string(in_base) + "]\n"
         "muli %r2, %r1, 3\n"
         "addi %r2, %r2, 7\n"
         "sts [%r0 + " + std::to_string(out_base) + "], %r2\n"
         "exit\n";
}

// ---- scheduler basics ------------------------------------------------------

TEST(Scheduler, CommandsExecuteInBackgroundAndSynchronizeJoins) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto in = dev.alloc<std::uint32_t>(64);
  auto out = dev.alloc<std::uint32_t>(64);
  Module& mod = dev.load_module(affine_kernel(in.word_base(),
                                              out.word_base()));
  std::vector<std::uint32_t> host(64);
  std::iota(host.begin(), host.end(), 0u);
  std::vector<std::uint32_t> result(64, 0);

  auto& stream = dev.stream();
  stream.copy_in(in, std::span<const std::uint32_t>(host));
  Event event = stream.launch(mod.kernel(), 64);
  stream.copy_out(out, std::span<std::uint32_t>(result));

  // The event resolves without synchronize(): wait() joins just it.
  event.wait();
  EXPECT_TRUE(event.done());
  stream.synchronize();
  EXPECT_EQ(stream.pending(), 0u);
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(result[i], 3 * i + 7) << i;
  }
}

TEST(Scheduler, PauseHoldsTheQueueAndResumeDrainsIt) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto buf = dev.alloc<std::uint32_t>(16);
  const std::vector<std::uint32_t> host(16, 42);

  dev.scheduler().pause();
  dev.stream().copy_in(buf, std::span<const std::uint32_t>(host));
  EXPECT_EQ(dev.stream().pending(), 1u);
  dev.scheduler().resume();
  dev.stream().synchronize();
  EXPECT_EQ(dev.stream().pending(), 0u);
  EXPECT_EQ(buf.at(7), 42u);
}

TEST(Scheduler, TimelineSerialBoundsOverlap) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto in = dev.alloc<std::uint32_t>(64);
  auto out = dev.alloc<std::uint32_t>(64);
  Module& mod = dev.load_module(affine_kernel(in.word_base(),
                                              out.word_base()));
  std::vector<std::uint32_t> host(64, 1);
  std::vector<std::uint32_t> result(64);
  auto& stream = dev.stream();
  for (int i = 0; i < 4; ++i) {
    stream.copy_in(in, std::span<const std::uint32_t>(host));
    stream.launch(mod.kernel(), 64);
    stream.copy_out(out, std::span<std::uint32_t>(result));
  }
  stream.synchronize();

  const auto t = dev.scheduler().timeline();
  EXPECT_EQ(t.commands, 12u);
  EXPECT_EQ(t.copied_words, 8u * 64u);
  EXPECT_GT(t.exec_cycles, 0u);
  EXPECT_GT(t.overlap_us, 0.0);
  // A single in-order stream cannot overlap, and overlap never exceeds
  // serial.
  EXPECT_LE(t.overlap_us, t.serial_us + 1e-9);
  EXPECT_GE(t.overlap_speedup(), 1.0);
}

// ---- event hardening -------------------------------------------------------

TEST(Event, AccessorsThrowWhileInFlightAndResolveAfter) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  Module& mod = dev.load_module("movi %r1, 1\nexit\n");

  dev.scheduler().pause();
  Event event = dev.stream().launch(mod.kernel(), 16);
  EXPECT_FALSE(event.done());
  EXPECT_FALSE(event.complete());
  EXPECT_THROW(event.stats(), Error);
  EXPECT_THROW(event.wall_us(), Error);
  EXPECT_THROW(event.elapsed_us(), Error);
  dev.scheduler().resume();
  event.wait();

  EXPECT_TRUE(event.done());
  EXPECT_TRUE(event.stats().exited);
  EXPECT_GT(event.wall_us(), 0.0);
  EXPECT_GE(event.elapsed_us(), 0.0);

  // A default-constructed event never resolves and throws on access.
  Event empty;
  EXPECT_FALSE(empty.done());
  EXPECT_THROW(empty.stats(), Error);
  empty.wait();  // no-op, not a crash
}

TEST(Event, OutlivingItsDeviceIsSafe) {
  // Events are value handles; one kept past its device's lifetime must
  // still answer polls and wait() without touching the dead scheduler.
  Event event;
  {
    Device dev(DeviceDescriptor::simt_core(small_cfg()));
    Module& mod = dev.load_module("movi %r1, 1\nexit\n");
    event = dev.stream().launch(mod.kernel(), 16);
    dev.stream().synchronize();
  }
  EXPECT_TRUE(event.done());
  event.wait();  // degrades to a completion check, not a dangling deref
  EXPECT_TRUE(event.stats().exited);
}

TEST(Event, InvalidLaunchesThrowAtEnqueue) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  Module& mod = dev.load_module("exit\n");
  EXPECT_THROW(dev.stream().launch(Kernel{}, 16), Error);
  EXPECT_THROW(dev.stream().launch(mod.kernel(), 0), Error);
}

TEST(Event, AsyncKernelFaultSurfacesAtSynchronize) {
  Device dev(DeviceDescriptor::simt_core(small_cfg(64, 256)));
  // Store far out of the 256-word memory: faults on the scheduler thread.
  Module& mod = dev.load_module(
      "movi %r0, 9999\n"
      "sts [%r0], %r0\n"
      "exit\n");
  Event event = dev.stream().launch(mod.kernel(), 16);
  EXPECT_THROW(dev.stream().synchronize(), Error);
  // The event is permanently failed: it never completes, and every
  // wait()/stats() rethrows the fault.
  EXPECT_FALSE(event.done());
  EXPECT_TRUE(event.failed());
  EXPECT_THROW(event.wait(), Error);
  EXPECT_THROW(event.wait(), Error);
  EXPECT_THROW(event.stats(), Error);

  // The device stays usable: the sticky stream error was consumed.
  Module& ok = dev.load_module("movi %r1, 5\nexit\n");
  Event event2 = dev.stream().launch(ok.kernel(), 16);
  dev.stream().synchronize();
  EXPECT_TRUE(event2.done());
}

TEST(Event, FaultsStayAttributedToTheirStream) {
  Device dev(DeviceDescriptor::simt_core(small_cfg(64, 256)));
  Module& bad = dev.load_module(
      "movi %r0, 9999\n"
      "sts [%r0], %r0\n"
      "exit\n");
  Module& ok = dev.load_module("movi %r1, 5\nexit\n");

  auto& sa = dev.stream();
  auto& sb = dev.create_stream();
  Event failed = sa.launch(bad.kernel(), 16);
  Event fine = sb.launch(ok.kernel(), 16);

  // Stream B synchronizes first: it must NOT steal stream A's fault.
  sb.synchronize();
  EXPECT_TRUE(fine.done());
  EXPECT_THROW(sa.synchronize(), Error);
  EXPECT_TRUE(failed.failed());
}

// ---- multiple streams ------------------------------------------------------

TEST(MultiStream, TwoStreamsMatchSingleStreamResults) {
  const unsigned n = 96;
  std::vector<std::uint32_t> ha(n), hb(n);
  for (unsigned i = 0; i < n; ++i) {
    ha[i] = 5 * i + 3;
    hb[i] = 1000 - i;
  }

  // Single-stream reference on a 2-core device.
  const auto run_single = [&] {
    Device dev(DeviceDescriptor::multi_core(2, small_cfg(32, 2048)));
    auto a_in = dev.alloc<std::uint32_t>(n);
    auto a_out = dev.alloc<std::uint32_t>(n);
    auto b_in = dev.alloc<std::uint32_t>(n);
    auto b_out = dev.alloc<std::uint32_t>(n);
    Module& ma = dev.load_module(affine_kernel(a_in.word_base(),
                                               a_out.word_base()));
    Module& mb = dev.load_module(affine_kernel(b_in.word_base(),
                                               b_out.word_base()));
    std::vector<std::uint32_t> ra(n), rb(n);
    auto& s = dev.stream();
    s.copy_in(a_in, std::span<const std::uint32_t>(ha));
    s.launch(ma.kernel(), n);
    s.copy_out(a_out, std::span<std::uint32_t>(ra));
    s.copy_in(b_in, std::span<const std::uint32_t>(hb));
    s.launch(mb.kernel(), n);
    s.copy_out(b_out, std::span<std::uint32_t>(rb));
    s.synchronize();
    return std::make_pair(ra, rb);
  };

  // The same work ping-ponged over two independent streams with disjoint
  // buffers must produce bit-identical results.
  const auto run_dual = [&] {
    Device dev(DeviceDescriptor::multi_core(2, small_cfg(32, 2048)));
    auto a_in = dev.alloc<std::uint32_t>(n);
    auto a_out = dev.alloc<std::uint32_t>(n);
    auto b_in = dev.alloc<std::uint32_t>(n);
    auto b_out = dev.alloc<std::uint32_t>(n);
    Module& ma = dev.load_module(affine_kernel(a_in.word_base(),
                                               a_out.word_base()));
    Module& mb = dev.load_module(affine_kernel(b_in.word_base(),
                                               b_out.word_base()));
    std::vector<std::uint32_t> ra(n), rb(n);
    auto& sa = dev.stream();
    auto& sb = dev.create_stream();
    EXPECT_EQ(dev.stream_count(), 2u);
    sa.copy_in(a_in, std::span<const std::uint32_t>(ha));
    sb.copy_in(b_in, std::span<const std::uint32_t>(hb));
    sa.launch(ma.kernel(), n);
    sb.launch(mb.kernel(), n);
    sa.copy_out(a_out, std::span<std::uint32_t>(ra));
    sb.copy_out(b_out, std::span<std::uint32_t>(rb));
    sa.synchronize();
    sb.synchronize();
    return std::make_pair(ra, rb);
  };

  const auto single = run_single();
  const auto dual = run_dual();
  EXPECT_EQ(dual.first, single.first);
  EXPECT_EQ(dual.second, single.second);
  for (unsigned i = 0; i < n; ++i) {
    ASSERT_EQ(single.first[i], 3 * ha[i] + 7) << i;
    ASSERT_EQ(single.second[i], 3 * hb[i] + 7) << i;
  }
}

TEST(MultiStream, WaitOrdersAcrossStreams) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto a = dev.alloc<std::uint32_t>(64);
  auto b = dev.alloc<std::uint32_t>(64);
  auto c = dev.alloc<std::uint32_t>(64);
  // Producer: b[tid] = 3*a[tid] + 7. Consumer: c[tid] = 3*b[tid] + 7.
  Module& producer = dev.load_module(affine_kernel(a.word_base(),
                                                   b.word_base()));
  Module& consumer = dev.load_module(affine_kernel(b.word_base(),
                                                   c.word_base()));
  std::vector<std::uint32_t> host(64);
  std::iota(host.begin(), host.end(), 0u);
  std::vector<std::uint32_t> result(64);

  auto& sa = dev.stream();
  auto& sb = dev.create_stream();
  sa.copy_in(a, std::span<const std::uint32_t>(host));
  Event produced = sa.launch(producer.kernel(), 64);
  sb.wait(produced);
  sb.launch(consumer.kernel(), 64);
  sb.copy_out(c, std::span<std::uint32_t>(result));
  sb.synchronize();

  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(result[i], 3 * (3 * i + 7) + 7) << i;
  }

  // Waiting on a foreign or empty event is an error.
  Device other(DeviceDescriptor::simt_core(small_cfg()));
  Event foreign = other.stream().launch(
      other.load_module("exit\n").kernel(), 16);
  EXPECT_THROW(sa.wait(Event{}), Error);
  EXPECT_THROW(sa.wait(foreign), Error);
  other.stream().synchronize();
}

// ---- request batching ------------------------------------------------------

TEST(BatchQueue, CoalescesRequestsIntoOneLaunch) {
  Device dev(DeviceDescriptor::simt_core(small_cfg(64, 2048)));
  const unsigned m = 16;        // words per request
  const unsigned capacity = 8;  // requests per batch
  auto in = dev.alloc<std::uint32_t>(m * capacity);
  auto out = dev.alloc<std::uint32_t>(m * capacity);
  Module& mod = dev.load_module(affine_kernel(in.word_base(),
                                              out.word_base()));

  BatchQueue queue(dev.stream(), mod.kernel(), in, out, m);
  EXPECT_EQ(queue.capacity(), capacity);

  std::vector<BatchQueue::Ticket> tickets;
  std::vector<std::vector<std::uint32_t>> inputs;
  for (unsigned r = 0; r < 5; ++r) {
    std::vector<std::uint32_t> req(m);
    for (unsigned i = 0; i < m; ++i) {
      req[i] = 100 * r + i;
    }
    inputs.push_back(req);
    tickets.push_back(queue.submit(req));
  }
  EXPECT_EQ(queue.pending_requests(), 5u);
  EXPECT_THROW(tickets[0].event(), Error);   // not flushed yet
  EXPECT_THROW(tickets[0].result(), Error);

  Event event = queue.flush();
  dev.stream().synchronize();

  ASSERT_TRUE(event.done());
  EXPECT_TRUE(event.stats().exited);
  EXPECT_EQ(queue.stats().requests, 5u);
  EXPECT_EQ(queue.stats().batches, 1u);
  EXPECT_EQ(queue.stats().launches_saved(), 4u);
  for (unsigned r = 0; r < 5; ++r) {
    ASSERT_TRUE(tickets[r].done());
    const auto result = tickets[r].result();
    ASSERT_EQ(result.size(), m);
    for (unsigned i = 0; i < m; ++i) {
      EXPECT_EQ(result[i], 3 * inputs[r][i] + 7) << r << ":" << i;
    }
  }
}

TEST(BatchQueue, AutoFlushesWhenFullAndValidates) {
  Device dev(DeviceDescriptor::simt_core(small_cfg(64, 1024)));
  const unsigned m = 32;
  auto in = dev.alloc<std::uint32_t>(m * 2);  // capacity 2
  auto out = dev.alloc<std::uint32_t>(m * 2);
  Module& mod = dev.load_module(affine_kernel(in.word_base(),
                                              out.word_base()));
  BatchQueue queue(dev.stream(), mod.kernel(), in, out, m);

  const std::vector<std::uint32_t> req(m, 9);
  auto t0 = queue.submit(req);
  queue.submit(req);
  EXPECT_EQ(queue.pending_requests(), 2u);
  queue.submit(req);  // full: the first two flush automatically
  EXPECT_EQ(queue.pending_requests(), 1u);
  EXPECT_EQ(queue.stats().batches, 1u);
  queue.flush();
  dev.stream().synchronize();
  EXPECT_EQ(queue.stats().batches, 2u);
  EXPECT_EQ(t0.result()[0], 3u * 9u + 7u);

  // Wrong request size and bad construction throw.
  const std::vector<std::uint32_t> bad(m + 1, 0);
  EXPECT_THROW(queue.submit(bad), Error);
  EXPECT_THROW(BatchQueue(dev.stream(), mod.kernel(), in, out, 0), Error);
  EXPECT_THROW(BatchQueue(dev.stream(), Kernel{}, in, out, m), Error);
  EXPECT_THROW(BatchQueue(dev.stream(), mod.kernel(), in, out, m * 4), Error);
}

// ---- multicore shard-map staging -------------------------------------------

TEST(ShardMap, SecondLaunchStagesOnlyIncrements) {
  Device dev(DeviceDescriptor::multi_core(4, small_cfg(32, 2048)));
  auto in = dev.alloc<std::uint32_t>(256);
  auto out = dev.alloc<std::uint32_t>(256);
  Module& mod = dev.load_module(affine_kernel(in.word_base(),
                                              out.word_base()));
  std::vector<std::uint32_t> host(256, 11);
  in.write(host);

  const auto first = dev.launch_sync(mod.kernel(), 256);
  // Every core had to see the host-written input at least.
  EXPECT_GT(first.staged_words, 0u);
  EXPECT_GT(first.merged_words, 0u);
  EXPECT_EQ(first.per_core.size(), 4u);

  // Relaunch with untouched inputs: cores only restage each other's merged
  // output shards, never the full image again.
  const auto second = dev.launch_sync(mod.kernel(), 256);
  EXPECT_LT(second.staged_words, first.staged_words);

  const auto result = out.read();
  for (unsigned i = 0; i < 256; ++i) {
    ASSERT_EQ(result[i], 3u * 11u + 7u) << i;
  }
}

TEST(ShardMap, LaunchStatsCarryOccupancyAndOverlapModel) {
  Device dev(DeviceDescriptor::multi_core(4, small_cfg(32, 2048)));
  auto in = dev.alloc<std::uint32_t>(256);
  auto out = dev.alloc<std::uint32_t>(256);
  Module& mod = dev.load_module(affine_kernel(in.word_base(),
                                              out.word_base()));
  std::vector<std::uint32_t> host(256, 1);
  in.write(host);

  const auto stats = dev.launch_sync(mod.kernel(), 256);  // 2 rounds
  EXPECT_EQ(stats.rounds, 2u);
  ASSERT_EQ(stats.per_core.size(), 4u);
  for (const auto& c : stats.per_core) {
    EXPECT_GT(c.exec_cycles, 0u);
    EXPECT_EQ(c.rounds, 2u);
    EXPECT_GT(c.occupancy, 0.0);
    EXPECT_LE(c.occupancy, 1.0);
  }
  EXPECT_GT(stats.occupancy(), 0.0);
  // The overlap model never beats pure exec or loses to fully serial
  // staging.
  EXPECT_GE(stats.overlap_cycles, stats.perf.cycles);
  EXPECT_LE(stats.overlap_cycles, stats.serial_cycles);
  EXPECT_GT(stats.serial_wall_us, 0.0);
  EXPECT_GE(stats.serial_wall_us, stats.overlap_wall_us);
}

// ---- grid-split edge cases across backends ---------------------------------

std::vector<std::uint32_t> run_grid(DeviceDescriptor desc, unsigned threads) {
  Device dev(desc);
  auto out = dev.alloc<std::uint32_t>(threads);
  Module& mod = dev.load_module(
      "movsr %r0, %tid\n"
      "muli %r1, %r0, 13\n"
      "addi %r1, %r1, 5\n"
      "sts [%r0 + " + std::to_string(out.word_base()) + "], %r1\n"
      "exit\n");
  const auto stats = dev.launch_sync(mod.kernel(), threads);
  EXPECT_TRUE(stats.exited);
  return out.read();
}

TEST(GridSplit, EdgeSizesAgreeOnEveryBackend) {
  // 3 x 32-thread cores: capacity 96. Probe threads not divisible by the
  // core count, exactly at capacity, and one beyond (forcing a second
  // round with a 1-thread shard).
  baseline::ScalarCpuConfig scfg;
  scfg.shared_mem_words = 2048;
  for (const unsigned threads : {1u, 31u, 95u, 96u, 97u, 100u}) {
    const auto core =
        run_grid(DeviceDescriptor::simt_core(small_cfg(32, 2048)), threads);
    const auto multi = run_grid(
        DeviceDescriptor::multi_core(3, small_cfg(32, 2048)), threads);
    const auto scalar =
        run_grid(DeviceDescriptor::scalar_cpu(scfg), threads);
    ASSERT_EQ(core.size(), threads);
    EXPECT_EQ(multi, core) << threads << " threads";
    EXPECT_EQ(scalar, core) << threads << " threads";
    for (unsigned i = 0; i < threads; ++i) {
      ASSERT_EQ(core[i], 13 * i + 5) << threads << ":" << i;
    }
  }
}

TEST(GridSplit, RoundAccountingAtCapacityBoundaries) {
  Device dev(DeviceDescriptor::multi_core(3, small_cfg(32, 2048)));
  ASSERT_EQ(dev.max_concurrent_threads(), 96u);
  Module& mod = dev.load_module("movi %r1, 1\nexit\n");
  EXPECT_EQ(dev.launch_sync(mod.kernel(), 96).rounds, 1u);
  EXPECT_EQ(dev.launch_sync(mod.kernel(), 97).rounds, 2u);
}

TEST(GridSplit, ZeroThreadsThrowsOnEveryBackend) {
  baseline::ScalarCpuConfig scfg;
  scfg.shared_mem_words = 2048;
  const DeviceDescriptor descs[] = {
      DeviceDescriptor::simt_core(small_cfg(32, 2048)),
      DeviceDescriptor::multi_core(3, small_cfg(32, 2048)),
      DeviceDescriptor::scalar_cpu(scfg)};
  for (const auto& desc : descs) {
    Device dev(desc);
    Module& mod = dev.load_module("exit\n");
    EXPECT_THROW(dev.launch_sync(mod.kernel(), 0), Error);
    EXPECT_THROW(dev.stream().launch(mod.kernel(), 0), Error);
  }
}

// ---- memory pool alignment -------------------------------------------------

TEST(MemoryPoolAlign, AlignedAllocationsRoundUp) {
  Device dev(DeviceDescriptor::simt_core(small_cfg(64, 1024)));
  auto a = dev.alloc<std::uint32_t>(3);
  EXPECT_EQ(a.word_base(), 0u);
  auto b = dev.alloc<std::uint32_t>(10, 16);
  EXPECT_EQ(b.word_base(), 16u);  // bumped from 3 to the next 16 boundary
  auto c = dev.alloc<std::uint32_t>(1);
  EXPECT_EQ(c.word_base(), 26u);  // unaligned packs right behind
  auto d = dev.alloc<std::uint32_t>(1, 64);
  EXPECT_EQ(d.word_base(), 64u);
}

TEST(MemoryPoolAlign, RejectsBadRequests) {
  Device dev(DeviceDescriptor::simt_core(small_cfg(64, 1024)));
  EXPECT_THROW(dev.alloc<std::uint32_t>(0), Error);
  EXPECT_THROW(dev.alloc<std::uint32_t>(0, 16), Error);
  EXPECT_THROW(dev.alloc<std::uint32_t>(4, 3), Error);   // not a power of 2
  EXPECT_THROW(dev.alloc<std::uint32_t>(4, 0), Error);
  // Alignment padding counts against the arena.
  dev.alloc<std::uint32_t>(1000);
  EXPECT_THROW(dev.alloc<std::uint32_t>(8, 1024), Error);
  EXPECT_NO_THROW(dev.alloc<std::uint32_t>(8, 8));
}

}  // namespace
}  // namespace simt::runtime
