// Differential property testing, control-flow edition: randomized programs
// with zero-overhead loops (nested), subroutine calls, forward branches and
// predicated back edges, executed on both the cycle-accurate Gpgpu and the
// reference interpreter. Architectural state must match.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/gpgpu.hpp"
#include "core/ref_interp.hpp"

namespace simt::core {
namespace {

using isa::Guard;
using isa::Instr;
using isa::Opcode;

constexpr unsigned kThreads = 32;
constexpr unsigned kRegs = 12;
constexpr unsigned kSharedWords = 512;

CoreConfig cf_cfg() {
  CoreConfig cfg;
  cfg.num_sps = 16;
  cfg.max_threads = kThreads;
  cfg.regs_per_thread = kRegs;
  cfg.shared_mem_words = kSharedWords;
  cfg.predicates_enabled = true;
  // Validate the structural engine against the reference regardless of
  // the build default (the fast engine has its own suite).
  cfg.bit_accurate = true;
  return cfg;
}

Instr make(Opcode op) {
  Instr in;
  in.op = op;
  return in;
}

/// Emit a short straight-line block of arithmetic on registers 0..kRegs-1.
void emit_block(Xoshiro256& rng, std::vector<Instr>& prog, int len) {
  const Opcode ops[] = {Opcode::ADD,  Opcode::SUB,  Opcode::XOR,
                        Opcode::MULLO, Opcode::MAX, Opcode::SHR,
                        Opcode::ADDI, Opcode::BREV};
  for (int i = 0; i < len; ++i) {
    Instr in = make(ops[rng.next_below(std::size(ops))]);
    in.rd = static_cast<std::uint8_t>(rng.next_below(kRegs));
    in.ra = static_cast<std::uint8_t>(rng.next_below(kRegs));
    in.rb = static_cast<std::uint8_t>(rng.next_below(kRegs));
    if (isa::op_info(in.op).format == isa::Format::RRI) {
      in.imm = static_cast<std::int32_t>(rng.next_u32());
    }
    prog.push_back(in);
  }
}

/// Structured random program: nested zero-overhead loops around arithmetic
/// blocks, a subroutine called from the main body, and a bounded
/// predicated convergence loop.
Program random_cf_program(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Instr> prog;

  // Prologue: thread-dependent values.
  {
    Instr tid = make(Opcode::MOVSR);
    tid.rd = 0;
    tid.imm = static_cast<std::int32_t>(isa::SpecialReg::Tid);
    prog.push_back(tid);
    Instr seed_reg = make(Opcode::MOVI);
    seed_reg.rd = 1;
    seed_reg.imm = static_cast<std::int32_t>(rng.next_u32());
    prog.push_back(seed_reg);
  }

  // Outer loop with a nested inner loop.
  {
    const auto outer_count = static_cast<std::int32_t>(2 + rng.next_below(3));
    const auto inner_count = static_cast<std::int32_t>(2 + rng.next_below(3));
    Instr outer = make(Opcode::LOOPI);
    const std::size_t outer_pos = prog.size();
    prog.push_back(outer);  // patched below
    emit_block(rng, prog, 2);
    Instr inner = make(Opcode::LOOPI);
    const std::size_t inner_pos = prog.size();
    prog.push_back(inner);
    emit_block(rng, prog, 3);
    const auto inner_end = static_cast<std::int32_t>(prog.size());
    emit_block(rng, prog, 2);
    const auto outer_end = static_cast<std::int32_t>(prog.size());
    prog[inner_pos].imm = (inner_count << 16) | inner_end;
    prog[outer_pos].imm = (outer_count << 16) | outer_end;
  }

  // Call a subroutine placed after EXIT.
  const std::size_t call_pos = prog.size();
  prog.push_back(make(Opcode::CALL));  // target patched below

  // Bounded convergence loop: decrement a counter until every thread hits
  // zero (BRP back edge on "any nonzero").
  {
    Instr cnt = make(Opcode::ANDI);  // r2 = tid & 7 (small per-thread count)
    cnt.rd = 2;
    cnt.ra = 0;
    cnt.imm = 7;
    prog.push_back(cnt);
    Instr zero = make(Opcode::MOVI);
    zero.rd = 3;
    zero.imm = 0;
    prog.push_back(zero);
    const auto loop_head = static_cast<std::int32_t>(prog.size());
    Instr setp = make(Opcode::SETP_NE);
    setp.pd = 0;
    setp.ra = 2;
    setp.rb = 3;
    prog.push_back(setp);
    Instr dec = make(Opcode::SUBI);
    dec.guard = Guard::IfTrue;
    dec.gpred = 0;
    dec.rd = 2;
    dec.ra = 2;
    dec.imm = 1;
    prog.push_back(dec);
    Instr brp = make(Opcode::BRP);
    brp.pa = 0;
    brp.imm = loop_head;
    prog.push_back(brp);
  }

  // Store a digest so shared memory also differentiates.
  {
    Instr mask = make(Opcode::ANDI);
    mask.rd = 4;
    mask.ra = 0;
    mask.imm = kSharedWords - 1;
    prog.push_back(mask);
    Instr sts = make(Opcode::STS);
    sts.rd = 1;
    sts.ra = 4;
    prog.push_back(sts);
  }
  prog.push_back(make(Opcode::EXIT));

  // Subroutine: a guarded block and RET.
  prog[call_pos].imm = static_cast<std::int32_t>(prog.size());
  {
    Instr setp = make(Opcode::SETP_LT);
    setp.pd = 1;
    setp.ra = 0;
    setp.rb = 1;
    prog.push_back(setp);
    Instr g = make(Opcode::XORI);
    g.guard = Guard::IfFalse;
    g.gpred = 1;
    g.rd = 1;
    g.ra = 1;
    g.imm = 0x5a5a5a5a;
    prog.push_back(g);
    emit_block(rng, prog, 3);
    prog.push_back(make(Opcode::RET));
  }

  return Program(std::move(prog));
}

class DifferentialCf : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialCf, GpgpuMatchesReference) {
  const std::uint64_t seed = GetParam();
  const Program prog = random_cf_program(seed);

  Gpgpu gpu(cf_cfg());
  ReferenceInterpreter ref(cf_cfg());
  gpu.load_program(prog);
  ref.load_program(prog);
  gpu.set_thread_count(kThreads);
  ref.set_thread_count(kThreads);

  Xoshiro256 init(seed * 31 + 7);
  for (unsigned t = 0; t < kThreads; ++t) {
    for (unsigned r = 0; r < kRegs; ++r) {
      const auto v = init.next_u32();
      gpu.write_reg(t, r, v);
      ref.write_reg(t, r, v);
    }
  }

  const auto res = gpu.run(0, 500'000);
  ASSERT_TRUE(res.exited) << "seed " << seed << "\n" << prog.listing();
  ref.run(0, 500'000);

  for (unsigned t = 0; t < kThreads; ++t) {
    for (unsigned r = 0; r < kRegs; ++r) {
      ASSERT_EQ(gpu.read_reg(t, r), ref.read_reg(t, r))
          << "seed " << seed << " thread " << t << " reg " << r;
    }
  }
  for (unsigned a = 0; a < kSharedWords; ++a) {
    ASSERT_EQ(gpu.read_shared(a), ref.read_shared(a)) << "addr " << a;
  }
  // Control-flow cost sanity: convergence loops flush on taken back edges.
  EXPECT_GT(res.perf.flush_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialCf,
                         ::testing::Range<std::uint64_t>(100, 140));

}  // namespace
}  // namespace simt::core
