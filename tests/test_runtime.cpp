// Tests for the host runtime layer (program load, data staging, launch).
#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace simt::runtime {
namespace {

core::CoreConfig cfg() {
  core::CoreConfig c;
  c.max_threads = 256;
  c.shared_mem_words = 4096;
  c.predicates_enabled = true;
  return c;
}

TEST(Runtime, CopyInLaunchCopyOut) {
  EgpuRuntime rt(cfg());
  rt.load_kernel(
      "movsr %r0, %tid\n"
      "lds %r1, [%r0]\n"
      "muli %r1, %r1, 2\n"
      "sts [%r0 + 256], %r1\n"
      "exit\n");
  std::vector<std::uint32_t> input(256);
  std::iota(input.begin(), input.end(), 0u);
  rt.copy_in(0, input);
  const auto res = rt.launch(256);
  EXPECT_TRUE(res.exited);
  const auto out = rt.copy_out(256, 256);
  for (unsigned i = 0; i < 256; ++i) {
    EXPECT_EQ(out[i], 2 * i);
  }
}

TEST(Runtime, SignedHelpers) {
  EgpuRuntime rt(cfg());
  rt.load_kernel("movsr %r0, %tid\nlds %r1, [%r0]\nneg %r1, %r1\n"
                 "sts [%r0 + 16], %r1\nexit\n");
  const std::vector<std::int32_t> input = {-5, 0, 7, -100};
  rt.copy_in_i32(0, input);
  rt.launch(4);
  const auto out = rt.copy_out_i32(16, 4);
  EXPECT_EQ(out, (std::vector<std::int32_t>{5, 0, -7, 100}));
}

TEST(Runtime, ReloadKernelReplacesImem) {
  EgpuRuntime rt(cfg());
  rt.load_kernel("movi %r1, 1\nexit\n");
  rt.launch(16);
  EXPECT_EQ(rt.gpu().read_reg(0, 1), 1u);
  // The I-MEM is externally re-loadable (Section 3).
  rt.load_kernel("movi %r1, 2\nexit\n");
  rt.launch(16);
  EXPECT_EQ(rt.gpu().read_reg(0, 1), 2u);
}

TEST(Runtime, RuntimeUsScalesWithFmax) {
  core::PerfCounters perf;
  perf.cycles = 95000;
  // 95k cycles at 950 MHz = 100 us; at 475 MHz = 200 us.
  EXPECT_DOUBLE_EQ(EgpuRuntime::runtime_us(perf, 950.0), 100.0);
  EXPECT_DOUBLE_EQ(EgpuRuntime::runtime_us(perf, 475.0), 200.0);
}

}  // namespace
}  // namespace simt::runtime
