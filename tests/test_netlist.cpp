// Tests for netlist generation: atom counts must agree with the resource
// model, arcs must be well-formed, and the ablation options must change the
// structure the way Sections 4/5 describe.
#include "fabric/netlist.hpp"

#include <gtest/gtest.h>

#include "area/resource_model.hpp"

namespace simt::fabric {
namespace {

core::CoreConfig flagship() { return core::CoreConfig::table1_flagship(); }

TEST(Netlist, AtomCountsMatchResourceModel) {
  const NetlistOptions opt;
  const Netlist nl = build_netlist(flagship(), opt);
  area::AreaOptions aopt;
  const auto res = area::estimate(flagship(), aopt);
  // Every placed ALM / M20K / DSP in the area model appears as an atom
  // (plus the delay-chain staging atoms, which carry no ALM cost there).
  const unsigned chain_atoms = flagship().decode_depth * 8;
  EXPECT_EQ(nl.count(AtomKind::Alm),
            res.gpgpu.alms + chain_atoms);
  EXPECT_EQ(nl.count(AtomKind::M20k), res.gpgpu.m20k);
  EXPECT_EQ(nl.count(AtomKind::Dsp), res.gpgpu.dsp);
  EXPECT_EQ(nl.count(AtomKind::AlmMem), 0u);
}

TEST(Netlist, ArcsAreWellFormed) {
  const Netlist nl = build_netlist(flagship(), {});
  ASSERT_FALSE(nl.arcs().empty());
  for (const auto& arc : nl.arcs()) {
    ASSERT_GE(arc.src, 0);
    ASSERT_LT(static_cast<std::size_t>(arc.src), nl.atoms().size());
    ASSERT_GE(arc.dst, 0);
    ASSERT_LT(static_cast<std::size_t>(arc.dst), nl.atoms().size());
    EXPECT_GT(arc.intrinsic_ps, 0.0f);
    EXPECT_GE(arc.min_span_tiles, 0.0f);
  }
}

TEST(Netlist, SixteenSpsWithTwoDspsEach) {
  const Netlist nl = build_netlist(flagship(), {});
  unsigned dsp_per_sp[16] = {};
  for (const auto& a : nl.atoms()) {
    if (a.kind == AtomKind::Dsp) {
      ASSERT_GE(a.sp_index, 0);
      ASSERT_LT(a.sp_index, 16);
      dsp_per_sp[a.sp_index]++;
    }
  }
  for (unsigned sp = 0; sp < 16; ++sp) {
    EXPECT_EQ(dsp_per_sp[sp], 2u) << "sp " << sp;
  }
}

TEST(Netlist, AutoSrrMapsDelayChainToMemoryMode) {
  // Section 5: shift-register replacement maps registers into ALM memory
  // mode (clock-capped at 850 MHz), which is why the paper turns it OFF.
  NetlistOptions opt;
  opt.auto_shift_register_replacement = true;
  const Netlist nl = build_netlist(flagship(), opt);
  EXPECT_GT(nl.count(AtomKind::AlmMem), 0u);
}

TEST(Netlist, BarrelShifterAddsSpannedArcs) {
  NetlistOptions opt;
  opt.shifter = hw::ShifterImpl::LogicBarrel;
  const Netlist barrel = build_netlist(flagship(), opt);
  const Netlist integrated = build_netlist(flagship(), {});
  // The barrel variant has more ALM atoms (the 100-ALM shift pairs) ...
  EXPECT_GT(barrel.count(AtomKind::Alm), integrated.count(AtomKind::Alm));
  // ... and carries unfoldable-span arcs (the 8/16-bit stages).
  auto spanned = [](const Netlist& nl) {
    unsigned n = 0;
    for (const auto& a : nl.arcs()) {
      if (a.min_span_tiles > 0) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_GT(spanned(barrel), 0u);
  EXPECT_EQ(spanned(integrated), 0u);
}

TEST(Netlist, HyperRegisterOptionMarksRetimableArcs) {
  NetlistOptions with;
  with.hyper_registers = true;
  NetlistOptions without;
  without.hyper_registers = false;
  auto retimable = [](const Netlist& nl) {
    unsigned n = 0;
    for (const auto& a : nl.arcs()) {
      if (a.retimable) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_GT(retimable(build_netlist(flagship(), with)), 0u);
  EXPECT_EQ(retimable(build_netlist(flagship(), without)), 0u);
}

TEST(Netlist, EnableFanoutReachesEverySp) {
  // The pipeline-advance enable is the most critical path (Section 3): it
  // must fan out from the instruction block to all 16 SPs.
  const Netlist nl = build_netlist(flagship(), {});
  bool sp_hit[16] = {};
  for (const auto& arc : nl.arcs()) {
    const auto& src = nl.atoms()[static_cast<std::size_t>(arc.src)];
    const auto& dst = nl.atoms()[static_cast<std::size_t>(arc.dst)];
    if (src.module == ModuleClass::Inst && dst.sp_index >= 0 &&
        arc.intrinsic_ps > 350.0f) {
      sp_hit[dst.sp_index] = true;
    }
  }
  for (unsigned sp = 0; sp < 16; ++sp) {
    EXPECT_TRUE(sp_hit[sp]) << "sp " << sp;
  }
}

TEST(Netlist, SharedMemoryConnectsToAllSps) {
  const Netlist nl = build_netlist(flagship(), {});
  unsigned to_shared[16] = {};
  unsigned from_shared[16] = {};
  for (const auto& arc : nl.arcs()) {
    const auto& src = nl.atoms()[static_cast<std::size_t>(arc.src)];
    const auto& dst = nl.atoms()[static_cast<std::size_t>(arc.dst)];
    if (src.sp_index >= 0 && dst.module == ModuleClass::Shared) {
      to_shared[src.sp_index]++;
    }
    if (src.module == ModuleClass::Shared && dst.sp_index >= 0) {
      from_shared[dst.sp_index]++;
    }
  }
  for (unsigned sp = 0; sp < 16; ++sp) {
    EXPECT_GT(to_shared[sp], 0u) << "sp " << sp;
    EXPECT_GT(from_shared[sp], 0u) << "sp " << sp;
  }
}

}  // namespace
}  // namespace simt::fabric
