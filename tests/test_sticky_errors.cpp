// Regression tests for sticky-error propagation: a device fault during a
// BatchQueue flush or a GraphExec replay must surface on the non-blocking
// completion handles (Ticket::done/result/result_after, Event::resolved/
// rethrow_if_failed), not only at Stream::synchronize(). Before the fix, a
// faulted batch's retirement marker read as done and result() returned
// stale garbage.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "runtime/batch.hpp"
#include "runtime/buffer.hpp"
#include "runtime/device.hpp"
#include "runtime/graph.hpp"
#include "runtime/module.hpp"
#include "runtime/stream.hpp"

namespace simt::runtime {
namespace {

core::CoreConfig small_cfg(unsigned threads = 64, unsigned mem_words = 2048) {
  core::CoreConfig c;
  c.max_threads = threads;
  c.shared_mem_words = mem_words;
  c.predicates_enabled = true;
  return c;
}

/// An elementwise-shaped ABI kernel that always faults: stores far beyond
/// the 2048-word device memory.
std::string boom_abi() {
  return ".kernel boom\n"
         ".param in buffer\n"
         ".param out buffer\n"
         "movi %r0, 9999\n"
         "sts [%r0], %r0\n"
         "exit\n";
}

TEST(StickyErrors, EventResolvedAndRethrowIfFailed) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  Module& bad = dev.load_module(
      "movi %r0, 9999\n"
      "sts [%r0], %r0\n"
      "exit\n");
  Module& ok = dev.load_module("movi %r1, 5\nexit\n");

  Event fault = dev.stream().launch(bad.kernel(), 16);
  Event fine = dev.stream().launch(ok.kernel(), 16);
  EXPECT_THROW(dev.stream().synchronize(), Error);

  // resolved() is the poll that cannot hang on a fault: the failed event
  // never reads as done(), but it has resolved.
  EXPECT_TRUE(fault.resolved());
  EXPECT_FALSE(fault.done());
  EXPECT_TRUE(fault.failed());
  EXPECT_THROW(fault.rethrow_if_failed(), Error);
  // ...and on a healthy event it is equivalent to done(), with
  // rethrow_if_failed a no-op.
  EXPECT_TRUE(fine.resolved());
  EXPECT_TRUE(fine.done());
  EXPECT_NO_THROW(fine.rethrow_if_failed());
}

TEST(StickyErrors, BatchTicketSurfacesFlushFault) {
  constexpr unsigned kReq = 4;
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto in = dev.alloc<std::uint32_t>(kReq * 4);
  auto out = dev.alloc<std::uint32_t>(kReq * 4);
  const auto boom = dev.load_module(boom_abi()).kernel("boom");

  BatchQueue queue(dev.stream(), boom, in, out, kReq,
                   KernelArgs().arg(in).arg(out));
  const std::vector<std::uint32_t> payload(kReq, 42);
  auto ticket = queue.submit(payload);
  queue.flush();
  EXPECT_THROW(dev.stream().synchronize(), Error);

  // The faulted batch resolves: done() goes true (it would otherwise poll
  // forever) and result() rethrows the device fault instead of handing out
  // never-written output words.
  EXPECT_TRUE(ticket.done());
  EXPECT_THROW(ticket.result(), Error);
}

TEST(StickyErrors, ReplayFaultSurfacesOnResultAfter) {
  constexpr unsigned kReq = 4;
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto in = dev.alloc<std::uint32_t>(kReq * 4);
  auto out = dev.alloc<std::uint32_t>(kReq * 4);
  const auto scale = dev.load_module(kernels::scale_abi()).kernel("scale");

  BatchQueue queue(dev.stream(), scale, in, out, kReq,
                   KernelArgs().arg(in).arg(out).scalar(2).scalar(1));
  const std::vector<std::uint32_t> payload(kReq, 7);
  auto ticket = queue.submit(payload);

  Graph graph;
  dev.stream().begin_capture(graph);
  queue.flush();
  dev.stream().end_capture();
  auto exec = graph.instantiate();

  // Invalidate the captured plans' buffers: the replay faults on the
  // executor ("plan predates mem_reset"), and the ticket must rethrow that
  // fault through result_after instead of claiming the replay is merely
  // not complete yet.
  dev.mem_reset();
  Event replay = exec.launch(dev.stream());
  EXPECT_THROW(dev.stream().synchronize(), Error);
  EXPECT_TRUE(replay.failed());
  EXPECT_THROW(ticket.result_after(replay), Error);
}

TEST(StickyErrors, ResetThenReuseDoesNotResurrectOldFault) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  const auto boom = dev.load_module(boom_abi()).kernel("boom");
  auto in = dev.alloc<std::uint32_t>(4);
  auto out = dev.alloc<std::uint32_t>(4);

  // Fault the default stream, but do NOT synchronize: the sticky error is
  // parked in the stream's slot, exactly the state a recovery path finds.
  Event fault =
      dev.stream().launch(boom, 4, KernelArgs().arg(in).arg(out));
  EXPECT_THROW(fault.wait(), Error);  // wait() does not consume the slot
  EXPECT_TRUE(fault.failed());

  // Recovery: wipe device memory and move new work to a fresh stream. The
  // fresh stream has its own error slot -- the old fault must not leak
  // into it.
  dev.mem_reset();
  Stream& fresh = dev.create_stream();
  const auto ok = dev.load_module(kernels::scale_abi()).kernel("scale");
  auto in2 = dev.alloc<std::uint32_t>(4);
  auto out2 = dev.alloc<std::uint32_t>(4);
  const std::vector<std::uint32_t> payload{1, 2, 3, 4};
  std::vector<std::uint32_t> result(4, 0);
  fresh.copy_in(in2, std::span<const std::uint32_t>(payload));
  fresh.launch(ok, 4, KernelArgs().arg(in2).arg(out2).scalar(3).scalar(5));
  fresh.copy_out(out2, std::span<std::uint32_t>(result));
  EXPECT_NO_THROW(fresh.synchronize());
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i], payload[i] * 3 + 5);
  }

  // The faulted stream still holds its parked sticky error. clear_error()
  // (the documented test/recovery escape hatch) drops it, after which the
  // stream is reusable and the old fault never resurfaces.
  dev.stream().clear_error();
  dev.stream().launch(ok, 4,
                      KernelArgs().arg(in2).arg(out2).scalar(2).scalar(0));
  EXPECT_NO_THROW(dev.stream().synchronize());
}

}  // namespace
}  // namespace simt::runtime
