// Deterministic fault injection (common/faults.hpp) and the recovery
// machinery it exercises: seeded reproducibility of the fault trace, every
// injection site firing and being survived, corruption caught by the
// three-backend differential and by the serving tier's verify hook, the
// watchdog failing a stalled replay with a named DeadlineExceeded error,
// the Quarantined -> Probation -> Healthy canary round-trip, and the Block
// overload policy waking a blocked submit on its deadline.
#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "common/faults.hpp"
#include "kernels/kernels.hpp"
#include "runtime/buffer.hpp"
#include "runtime/device.hpp"
#include "runtime/graph.hpp"
#include "runtime/module.hpp"
#include "runtime/stream.hpp"

namespace simt {
namespace {

namespace rt = simt::runtime;
using faults::FaultInjector;
using faults::FaultPlan;
using faults::FaultSite;

core::CoreConfig small_cfg(unsigned threads = 64, unsigned mem_words = 2048) {
  core::CoreConfig c;
  c.max_threads = threads;
  c.shared_mem_words = mem_words;
  c.predicates_enabled = true;
  return c;
}

// ---- spec grammar -----------------------------------------------------------

TEST(FaultSpec, ParsesTheFullGrammar) {
  const auto plan = FaultPlan::parse(
      "copy_in:transient:p=0.01; launch:sticky:after=200 ;"
      "dma:stall=50us;replay:corrupt:limit=3;staging:stall=2ms");
  // dma expands to copy_in + copy_out, so 6 rules total.
  ASSERT_EQ(plan.rules.size(), 6u);
  EXPECT_EQ(plan.rules[0].site, FaultSite::CopyIn);
  EXPECT_DOUBLE_EQ(plan.rules[0].p, 0.01);
  EXPECT_EQ(plan.rules[1].site, FaultSite::Launch);
  EXPECT_EQ(plan.rules[1].kind, faults::FaultKind::Sticky);
  EXPECT_EQ(plan.rules[1].after, 200u);
  EXPECT_EQ(plan.rules[2].stall_us, 50u);
  EXPECT_EQ(plan.rules[3].stall_us, 50u);
  EXPECT_EQ(plan.rules[4].limit, 3u);
  EXPECT_EQ(plan.rules[5].stall_us, 2000u);
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse(" ; ; ").empty());
  EXPECT_EQ(FaultInjector::from_spec("", 1), nullptr);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("bogus:transient"), Error);
  EXPECT_THROW(FaultPlan::parse("copy_in"), Error);
  EXPECT_THROW(FaultPlan::parse("copy_in:explode"), Error);
  EXPECT_THROW(FaultPlan::parse("copy_in:transient:p=1.5"), Error);
  EXPECT_THROW(FaultPlan::parse("copy_in:transient:p=x"), Error);
  EXPECT_THROW(FaultPlan::parse("launch:transient:after=ten"), Error);
  EXPECT_THROW(FaultPlan::parse("launch:stall=50s"), Error);
  EXPECT_THROW(FaultPlan::parse("launch:transient:frobnicate=1"), Error);
}

// ---- seeded determinism -----------------------------------------------------

/// Drive one injector through a fixed trigger sequence, swallowing thrown
/// faults, and return its trace.
std::string drive(FaultInjector& inj, unsigned rounds) {
  std::vector<std::uint32_t> payload(8, 0xffffffffu);
  for (unsigned i = 0; i < rounds; ++i) {
    for (const FaultSite s :
         {FaultSite::CopyIn, FaultSite::Launch, FaultSite::CopyOut,
          FaultSite::Replay, FaultSite::Staging}) {
      try {
        inj.at(s, payload);
      } catch (const Error&) {
      }
    }
  }
  return inj.trace_string();
}

TEST(FaultDeterminism, SameSpecAndSeedSameTrace) {
  const char* spec =
      "copy_in:transient:p=0.3;launch:corrupt:p=0.4;copy_out:transient:p=0.2;"
      "replay:sticky:after=20:limit=5";
  auto a = FaultInjector::from_spec(spec, 1234);
  auto b = FaultInjector::from_spec(spec, 1234);
  const std::string trace = drive(*a, 64);
  EXPECT_FALSE(trace.empty());
  EXPECT_EQ(trace, drive(*b, 64));

  // A different seed draws a different storm from the same plan.
  auto c = FaultInjector::from_spec(spec, 4321);
  EXPECT_NE(trace, drive(*c, 64));
}

TEST(FaultDeterminism, DisarmedTriggersConsumeNoIndices) {
  const char* spec = "launch:transient:p=0.5";
  auto a = FaultInjector::from_spec(spec, 99);
  auto b = FaultInjector::from_spec(spec, 99);

  // b runs a disarmed warmup burst first (plan registration, canary
  // replays); the armed-phase sequence must be unaffected.
  b->disarm();
  for (int i = 0; i < 37; ++i) {
    b->at(FaultSite::Launch);
  }
  EXPECT_EQ(b->triggers(FaultSite::Launch), 0u);
  b->arm();
  EXPECT_EQ(drive(*a, 32), drive(*b, 32));
}

// ---- every site fires and is survived ---------------------------------------

rt::DeviceDescriptor with_faults(rt::DeviceDescriptor desc,
                                 const std::string& spec) {
  desc.faults = FaultInjector::from_spec(spec, 7);
  return desc;
}

TEST(FaultSites, EagerCopyAndLaunchSitesFireAndAreSurvived) {
  for (const char* spec : {"copy_in:transient:limit=1",
                           "copy_out:transient:limit=1",
                           "launch:transient:limit=1"}) {
    rt::Device dev(
        with_faults(rt::DeviceDescriptor::simt_core(small_cfg()), spec));
    const auto scale = dev.load_module(kernels::scale_abi()).kernel("scale");
    auto in = dev.alloc<std::uint32_t>(8);
    auto out = dev.alloc<std::uint32_t>(8);
    const std::vector<std::uint32_t> payload{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<std::uint32_t> result(8, 0);

    const auto run = [&] {
      dev.stream().copy_in(in, std::span<const std::uint32_t>(payload));
      dev.stream().launch(scale, 8,
                          rt::KernelArgs().arg(in).arg(out).scalar(3).scalar(5));
      dev.stream().copy_out(out, std::span<std::uint32_t>(result));
      dev.stream().synchronize();
    };
    // First pass trips the injected transient...
    EXPECT_THROW(run(), faults::TransientFault) << spec;
    EXPECT_EQ(dev.fault_injector()->fired(), 1u) << spec;
    // ...and the device survives: the same pipeline now runs clean
    // (limit=1 healed the rule) and produces the right answer.
    EXPECT_NO_THROW(run()) << spec;
    for (std::size_t i = 0; i < result.size(); ++i) {
      EXPECT_EQ(result[i], payload[i] * 3 + 5) << spec;
    }
  }
}

TEST(FaultSites, ReplaySiteFailsTheCompositeAndHeals) {
  rt::Device dev(with_faults(rt::DeviceDescriptor::simt_core(small_cfg()),
                             "replay:transient:limit=1"));
  const auto scale = dev.load_module(kernels::scale_abi()).kernel("scale");
  auto in = dev.alloc<std::uint32_t>(8);
  auto out = dev.alloc<std::uint32_t>(8);
  const std::vector<std::uint32_t> payload{9, 8, 7, 6, 5, 4, 3, 2};
  std::vector<std::uint32_t> result(8, 0);

  rt::Graph graph;
  dev.stream().begin_capture(graph);
  dev.stream().copy_in(in, std::span<const std::uint32_t>(payload));
  dev.stream().launch(scale, 8,
                      rt::KernelArgs().arg(in).arg(out).scalar(2).scalar(1));
  dev.stream().copy_out(out, std::span<std::uint32_t>(result));
  dev.stream().end_capture();
  auto exec = graph.instantiate();

  rt::Event first = exec.launch(dev.stream());
  EXPECT_THROW(first.wait(), faults::TransientFault);
  dev.stream().clear_error();  // recovery: drop the parked stream error

  rt::Event second = exec.launch(dev.stream());
  EXPECT_NO_THROW(second.wait());
  dev.stream().synchronize();
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i], payload[i] * 2 + 1);
  }
}

TEST(FaultSites, StagingSiteFiresOnMultiCoreAndIsSurvived) {
  rt::Device dev(with_faults(rt::DeviceDescriptor::multi_core(2, small_cfg()),
                             "staging:transient:limit=1"));
  rt::Module& mod = dev.load_module("movi %r1, 1\nexit\n");
  EXPECT_THROW(dev.launch_sync(mod.kernel(), 64), faults::TransientFault);
  EXPECT_EQ(dev.fault_injector()->triggers(FaultSite::Staging), 2u);
  EXPECT_NO_THROW(dev.launch_sync(mod.kernel(), 64));
}

// ---- corruption is caught by the three-backend differential -----------------

TEST(FaultCorruption, DifferentialCatchesTheFlippedBit) {
  constexpr unsigned kN = 16;
  const std::vector<std::uint32_t> payload = [] {
    std::vector<std::uint32_t> p(kN);
    for (unsigned i = 0; i < kN; ++i) {
      p[i] = 0x100 + i;
    }
    return p;
  }();

  const auto run = [&](rt::DeviceDescriptor desc) {
    rt::Device dev(std::move(desc));
    const auto scale = dev.load_module(kernels::scale_abi()).kernel("scale");
    auto in = dev.alloc<std::uint32_t>(kN);
    auto out = dev.alloc<std::uint32_t>(kN);
    std::vector<std::uint32_t> result(kN, 0);
    dev.stream().copy_in(in, std::span<const std::uint32_t>(payload));
    dev.stream().launch(scale, kN,
                        rt::KernelArgs().arg(in).arg(out).scalar(3).scalar(5));
    dev.stream().copy_out(out, std::span<std::uint32_t>(result));
    dev.stream().synchronize();
    return result;
  };

  baseline::ScalarCpuConfig scfg;
  scfg.shared_mem_words = 2048;
  const auto clean_core = run(rt::DeviceDescriptor::simt_core(small_cfg()));
  const auto clean_scalar = run(rt::DeviceDescriptor::scalar_cpu(scfg));
  const auto bent = run(with_faults(
      rt::DeviceDescriptor::multi_core(2, small_cfg()), "copy_out:corrupt"));

  // The two clean backends agree bit-exact -- the differential's baseline.
  EXPECT_EQ(clean_core, clean_scalar);
  // The corrupted run differs from it by EXACTLY one flipped bit.
  ASSERT_EQ(bent.size(), clean_core.size());
  unsigned flipped = 0;
  for (unsigned i = 0; i < kN; ++i) {
    flipped += static_cast<unsigned>(
        std::popcount(bent[i] ^ clean_core[i]));
  }
  EXPECT_EQ(flipped, 1u);
}

// ---- serving tier -----------------------------------------------------------

cluster::PlanSpec scale_plan(unsigned n, bool with_verify = false) {
  cluster::PlanSpec spec;
  spec.name = "scale";
  spec.source = kernels::scale_abi();
  spec.kernel = "scale";
  spec.threads = n;
  spec.args = {cluster::PlanArg::input(n), cluster::PlanArg::output(n),
               cluster::PlanArg::immediate(3), cluster::PlanArg::immediate(5)};
  if (with_verify) {
    spec.verify = [](std::span<const std::uint32_t> payload,
                     const std::vector<cluster::ScalarOverride>&,
                     std::span<const std::uint32_t> output) {
      for (std::size_t i = 0; i < payload.size(); ++i) {
        if (output[i] != payload[i] * 3 + 5) {
          return false;
        }
      }
      return true;
    };
  }
  return spec;
}

std::vector<std::uint32_t> payload_for(unsigned n, std::uint32_t seed) {
  std::vector<std::uint32_t> p(n);
  for (unsigned i = 0; i < n; ++i) {
    p[i] = seed * 1000 + i;
  }
  return p;
}

TEST(ClusterFaults, VerifyHookCatchesCorruptionAndRetries) {
  cluster::ClusterConfig cfg;
  cfg.fault_spec = "copy_out:corrupt:limit=1";  // first response only
  cfg.max_retries = 3;
  cluster::DeviceCluster cluster(
      {rt::DeviceDescriptor::simt_core(small_cfg())}, cfg);
  cluster.register_plan(scale_plan(16, /*with_verify=*/true));

  const auto payload = payload_for(16, 1);
  auto ticket = cluster.submit("t", "scale", payload);
  ticket.wait();
  ASSERT_EQ(ticket.status(), cluster::RequestStatus::Ok);
  EXPECT_EQ(ticket.retries(), 1u);  // corrupt once, clean on retry
  const auto result = ticket.result();
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(result[i], payload[i] * 3 + 5);
  }
  const auto stats = cluster.stats();
  EXPECT_EQ(stats.corruption_detected, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(ClusterFaults, WatchdogFailsAStalledReplay) {
  cluster::ClusterConfig cfg;
  // Every launch stalls 100ms; the request deadline is 5ms: only the
  // watchdog can resolve the ticket (the replay is hung on the executor).
  cfg.fault_spec = "launch:stall=100ms";
  cfg.default_deadline_us = 5000;
  cfg.max_retries = 0;
  cluster::DeviceCluster cluster(
      {rt::DeviceDescriptor::simt_core(small_cfg())}, cfg);
  cluster.register_plan(scale_plan(16));

  const auto payload = payload_for(16, 2);
  const auto t0 = std::chrono::steady_clock::now();
  auto ticket = cluster.submit("t", "scale", payload);
  // wait_for bounds the host-side wait; the watchdog must have resolved
  // the ticket long before the 100ms stall finishes.
  ASSERT_TRUE(ticket.wait_for(std::chrono::microseconds(60000)));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(waited, std::chrono::milliseconds(95));
  EXPECT_EQ(ticket.status(), cluster::RequestStatus::Failed);
  try {
    ticket.result();
    FAIL() << "result() on a deadline-failed ticket must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("DeadlineExceeded"),
              std::string::npos)
        << e.what();
  }
  EXPECT_GE(cluster.stats().deadline_failures, 1u);
}

TEST(ClusterFaults, ProbationCanaryRoundTripReadmitsTheDevice) {
  std::vector<rt::DeviceDescriptor> descs = {
      rt::DeviceDescriptor::simt_core(small_cfg()),
      rt::DeviceDescriptor::simt_core(small_cfg())};
  // Device 0 throws sticky faults on its first two armed launches, then
  // heals -- modeling a reconfiguration blip. Device 1 is clean.
  descs[0].faults =
      FaultInjector::from_spec("launch:sticky:limit=2", /*seed=*/5);
  cluster::ClusterConfig cfg;
  cfg.max_retries = 3;
  cfg.probation_delay_us = 2000;
  cluster::DeviceCluster cluster(std::move(descs), cfg);
  cluster.register_plan(scale_plan(16));

  // Ties route to device 0 first: its launch throws StickyFault, it is
  // quarantined immediately (hard fault), and the request fails over.
  const auto payload = payload_for(16, 3);
  auto ticket = cluster.submit("t", "scale", payload);
  ticket.wait();
  ASSERT_EQ(ticket.status(), cluster::RequestStatus::Ok);
  EXPECT_EQ(ticket.device(), 1);
  EXPECT_EQ(cluster.health(0), cluster::DeviceHealth::Quarantined);

  // Probation round-trip: the first canary probe still trips the sticky
  // rule (fire #2) and re-quarantines; the second probe runs clean,
  // matches the golden, and re-admits the device.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (cluster.health(0) != cluster::DeviceHealth::Healthy &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(cluster.health(0), cluster::DeviceHealth::Healthy);
  const auto stats = cluster.stats();
  EXPECT_GE(stats.probations, 2u);
  EXPECT_EQ(stats.readmitted, 1u);
  EXPECT_GE(stats.quarantined, 2u);

  // The re-admitted device serves again.
  for (int i = 0; i < 8; ++i) {
    auto t = cluster.submit("t", "scale", payload_for(16, 10 + i));
    t.wait();
    ASSERT_EQ(t.status(), cluster::RequestStatus::Ok) << i;
  }
  EXPECT_GT(cluster.stats().per_device_completed[0], 0u);
}

TEST(ClusterFaults, BlockedSubmitWakesOnDeadlineExpiry) {
  cluster::ClusterConfig cfg;
  cfg.queue_capacity = 1;
  cfg.policy = cluster::OverloadPolicy::Block;
  cluster::DeviceCluster cluster(
      {rt::DeviceDescriptor::simt_core(small_cfg())}, cfg);
  cluster.register_plan(scale_plan(16));
  cluster.pause();  // hold the dispatcher so the queue stays full

  const auto payload = payload_for(16, 4);
  auto queued = cluster.submit("t", "scale", payload);

  // The queue is full and the dispatcher is held: this submit blocks, and
  // its 10ms deadline -- not new space -- must wake it.
  cluster::SubmitOptions opts;
  opts.deadline_us = 10000;
  const auto t0 = std::chrono::steady_clock::now();
  auto blocked = cluster.submit("t", "scale", payload, {}, opts);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, std::chrono::milliseconds(9));
  EXPECT_TRUE(blocked.done());
  EXPECT_EQ(blocked.status(), cluster::RequestStatus::Failed);
  try {
    blocked.result();
    FAIL() << "result() on a deadline-failed ticket must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("DeadlineExceeded"),
              std::string::npos);
  }
  EXPECT_EQ(cluster.stats().deadline_failures, 1u);

  // The queued request was untouched by the neighbor's deadline.
  cluster.resume();
  queued.wait();
  EXPECT_EQ(queued.status(), cluster::RequestStatus::Ok);
  cluster.drain();
}

TEST(ClusterFaults, RetryBackoffIsDeterministicAndRecovers) {
  cluster::ClusterConfig cfg;
  cfg.fault_spec = "launch:transient:limit=2";  // two armed launches fault
  cfg.fault_seed = 77;
  cfg.max_retries = 4;
  cfg.retry_backoff_us = 500;
  cfg.retry_backoff_cap_us = 2000;
  cfg.quarantine_after = 10;  // stay Degraded through the storm
  cluster::DeviceCluster cluster(
      {rt::DeviceDescriptor::simt_core(small_cfg())}, cfg);
  cluster.register_plan(scale_plan(16));

  const auto payload = payload_for(16, 5);
  auto ticket = cluster.submit("t", "scale", payload);
  ticket.wait();
  ASSERT_EQ(ticket.status(), cluster::RequestStatus::Ok);
  EXPECT_EQ(ticket.retries(), 2u);
  const auto stats = cluster.stats();
  EXPECT_EQ(stats.retried, 2u);
  EXPECT_EQ(stats.failed, 0u);
  // Two transients then a success: the device degraded and healed.
  EXPECT_EQ(cluster.health(0), cluster::DeviceHealth::Healthy);
}

}  // namespace
}  // namespace simt
