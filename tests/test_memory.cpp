// Tests for the memory substrates: DSP block modes, M20K geometry, and the
// 4R-1W multiport shared memory (Section 2).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hw/dsp_block.hpp"
#include "hw/m20k.hpp"
#include "hw/multiport_mem.hpp"

namespace simt::hw {
namespace {

// ---- DSP block -------------------------------------------------------------

TEST(DspBlock, Mul18x19SignedRange) {
  EXPECT_EQ(mul18x19(-(1 << 17), (1 << 18) - 1),
            static_cast<std::int64_t>(-(1 << 17)) * ((1 << 18) - 1));
  EXPECT_EQ(mul18x19(0, 0), 0);
  EXPECT_EQ(mul18x19(-1, -1), 1);
}

TEST(DspBlock, IndependentModeGivesTwoProducts) {
  DspBlock dsp(DspMode::TwoIndependent18x19);
  const auto r = dsp.mul_independent(100, 200, -300, 400);
  EXPECT_EQ(r.p0, 20000);
  EXPECT_EQ(r.p1, -120000);
}

TEST(DspBlock, SumModeAddsTwoProducts) {
  DspBlock dsp(DspMode::SumOfTwo18x19);
  EXPECT_EQ(dsp.mul_sum(100, 200, -300, 400), 20000 - 120000);
}

TEST(DspBlock, PublishedSpeedLimits) {
  // Section 2.1: integer modes up to 958 MHz, fp mode 771 MHz -- the reason
  // the processor is integer-only.
  EXPECT_DOUBLE_EQ(dsp_fmax_mhz(DspMode::TwoIndependent18x19), 958.0);
  EXPECT_DOUBLE_EQ(dsp_fmax_mhz(DspMode::SumOfTwo18x19), 958.0);
  EXPECT_DOUBLE_EQ(dsp_fmax_mhz(DspMode::Fp32), 771.0);
  EXPECT_EQ(kDspPipelineStages, 3);
}

// ---- M20K ------------------------------------------------------------------

TEST(M20k, BestModeMatchesAspectRatio) {
  EXPECT_EQ(m20k_best_mode(512, 40).width, 40u);
  EXPECT_EQ(m20k_best_mode(2048, 10).depth, 2048u);
}

TEST(M20k, BlockCountExamples) {
  // 1024 x 32 register file bank: two blocks (1024x20 x2 or 512x40 x2).
  EXPECT_EQ(m20k_blocks_for(1024, 32), 2u);
  // 512-deep 64-bit instruction memory: two 512x40 blocks.
  EXPECT_EQ(m20k_blocks_for(512, 64), 2u);
  // 4096 x 32 shared-memory copy: eight blocks.
  EXPECT_EQ(m20k_blocks_for(4096, 32), 8u);
  // Tiny memories still cost one block.
  EXPECT_EQ(m20k_blocks_for(16, 8), 1u);
}

TEST(M20k, ArrayReadWriteCommit) {
  M20kArray mem(512, 40);
  EXPECT_EQ(mem.block_count(), 1u);
  mem.write(7, 0x123456789ULL);
  // Read-old-data until the clock edge.
  EXPECT_EQ(mem.read(7), 0u);
  mem.commit();
  EXPECT_EQ(mem.read(7), 0x123456789ULL);
}

TEST(M20k, ArrayMasksToWidth) {
  M20kArray mem(64, 20);
  mem.write(0, 0xFFFFFFFFULL);
  mem.commit();
  EXPECT_EQ(mem.read(0), 0xFFFFFULL);  // 20-bit mask
}

// ---- multiport shared memory ----------------------------------------------

TEST(MultiPort, FourReadPortsSeeSameData) {
  MultiPortMemory mem(1024);
  mem.poke(100, 0xCAFEBABEu);
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_EQ(mem.read(p, 100), 0xCAFEBABEu);
  }
}

TEST(MultiPort, WriteUpdatesAllCopiesAtomically) {
  MultiPortMemory mem(256);
  mem.write(5, 111);
  // Before commit: all ports still read old data (read-during-write).
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_EQ(mem.read(p, 5), 0u);
  }
  mem.commit();
  for (unsigned p = 0; p < 4; ++p) {
    EXPECT_EQ(mem.read(p, 5), 111u);
  }
}

TEST(MultiPort, LastStagedWriteWins) {
  // The 16:1 write mux serializes lanes; the last lane to an address wins.
  MultiPortMemory mem(256);
  mem.write(9, 1);
  mem.write(9, 2);
  mem.write(9, 3);
  mem.commit();
  EXPECT_EQ(mem.read(0, 9), 3u);
}

TEST(MultiPort, BlockCountIsCopiesTimesDepthBlocks) {
  // 16 KB (4096 words) at 4R-1W: 4 copies x 8 blocks = 32 M20Ks.
  MultiPortMemory mem(4096, 4, 1);
  EXPECT_EQ(mem.m20k_blocks(), 32u);
  // A 2R-1W variant halves the copies.
  MultiPortMemory mem2(4096, 2, 1);
  EXPECT_EQ(mem2.m20k_blocks(), 16u);
}

TEST(MultiPort, PortClockArithmetic) {
  // Section 3.1: a load runs 4 clocks per block width (16 lanes / 4 ports);
  // a store 16 clocks (16 lanes / 1 port).
  MultiPortMemory mem(4096, 4, 1);
  EXPECT_EQ(mem.read_clocks(16), 4u);
  EXPECT_EQ(mem.write_clocks(16), 16u);
  EXPECT_EQ(mem.read_clocks(4), 1u);
  EXPECT_EQ(mem.read_clocks(5), 2u);
  EXPECT_EQ(mem.write_clocks(1), 1u);
}

TEST(MultiPort, RandomizedConsistencyAcrossPorts) {
  MultiPortMemory mem(512);
  Xoshiro256 rng(77);
  std::vector<std::uint32_t> shadow(512, 0);
  for (int i = 0; i < 2000; ++i) {
    const auto addr = static_cast<std::uint32_t>(rng.next_below(512));
    const auto val = rng.next_u32();
    mem.poke(addr, val);
    shadow[addr] = val;
    const auto check = static_cast<std::uint32_t>(rng.next_below(512));
    const auto port = static_cast<unsigned>(rng.next_below(4));
    EXPECT_EQ(mem.read(port, check), shadow[check]);
  }
}

}  // namespace
}  // namespace simt::hw
