// Integration tests for the SIMT processor: full kernels through the
// assembler, functional results, guards, dynamic thread scaling, control
// flow, and program validation.
#include "core/gpgpu.hpp"

#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/error.hpp"

namespace simt::core {
namespace {

CoreConfig test_cfg(unsigned threads = 512) {
  CoreConfig cfg;
  cfg.num_sps = 16;
  cfg.max_threads = threads;
  cfg.regs_per_thread = 16;
  cfg.shared_mem_words = 4096;
  cfg.predicates_enabled = true;
  return cfg;
}

Gpgpu make_gpu(const std::string& src, unsigned threads = 512) {
  Gpgpu gpu(test_cfg(threads));
  gpu.load_program(assembler::assemble(src));
  gpu.set_thread_count(threads);
  return gpu;
}

TEST(Gpgpu, VecAddKernel) {
  const std::string src =
      "movsr %r0, %tid\n"
      "lds %r1, [%r0 + 0]\n"
      "lds %r2, [%r0 + 512]\n"
      "add %r3, %r1, %r2\n"
      "sts [%r0 + 1024], %r3\n"
      "exit\n";
  auto gpu = make_gpu(src);
  for (unsigned i = 0; i < 512; ++i) {
    gpu.write_shared(i, i * 3);
    gpu.write_shared(512 + i, 1000 - i);
  }
  const auto res = gpu.run();
  EXPECT_TRUE(res.exited);
  for (unsigned i = 0; i < 512; ++i) {
    EXPECT_EQ(gpu.read_shared(1024 + i), i * 3 + 1000 - i) << i;
  }
  EXPECT_EQ(res.perf.instructions, 6u);
  EXPECT_EQ(res.perf.load_instrs, 2u);
  EXPECT_EQ(res.perf.store_instrs, 1u);
  EXPECT_EQ(res.perf.operation_instrs, 2u);
  EXPECT_EQ(res.perf.single_instrs, 1u);
  EXPECT_EQ(res.perf.shm_reads, 1024u);
  EXPECT_EQ(res.perf.shm_writes, 512u);
}

TEST(Gpgpu, StoreConflictHighestThreadWins) {
  // All threads store their tid to the same address; the 16:1 write mux
  // serializes lanes in thread order, so the highest tid lands last.
  const std::string src =
      "movsr %r0, %tid\n"
      "movi %r1, 7\n"
      "sts [%r1], %r0\n"
      "exit\n";
  auto gpu = make_gpu(src, 32);
  gpu.run();
  EXPECT_EQ(gpu.read_shared(7), 31u);
}

TEST(Gpgpu, GuardedExecutionMasksPerThread) {
  // Threads with tid < 100 add 1000; others leave their value alone.
  const std::string src =
      "movsr %r0, %tid\n"
      "movi %r1, 100\n"
      "setp.lt %p0, %r0, %r1\n"
      "mov %r2, %r0\n"
      "@p0 addi %r2, %r2, 1000\n"
      "@!p0 addi %r2, %r2, 1\n"
      "sts [%r0], %r2\n"
      "exit\n";
  auto gpu = make_gpu(src, 256);
  gpu.run();
  for (unsigned i = 0; i < 256; ++i) {
    EXPECT_EQ(gpu.read_shared(i), i < 100 ? i + 1000 : i + 1) << i;
  }
}

TEST(Gpgpu, SelpAndPredicateAlu) {
  const std::string src =
      "movsr %r0, %tid\n"
      "movi %r1, 8\n"
      "movi %r2, 111\n"
      "movi %r3, 222\n"
      "setp.lt %p0, %r0, %r1\n"   // tid < 8
      "setp.eq %p1, %r0, %r1\n"   // tid == 8
      "por %p2, %p0, %p1\n"       // tid <= 8
      "pnot %p3, %p2\n"           // tid > 8
      "selp %r4, %r2, %r3, %p2\n"
      "sts [%r0], %r4\n"
      "exit\n";
  auto gpu = make_gpu(src, 32);
  gpu.run();
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(gpu.read_shared(i), i <= 8 ? 111u : 222u) << i;
    EXPECT_EQ(gpu.read_pred(i, 3), i > 8);
  }
}

TEST(Gpgpu, SpecialRegistersPerThread) {
  const std::string src =
      "movsr %r1, %lane\n"
      "movsr %r2, %row\n"
      "movsr %r3, %nsp\n"
      "movsr %r4, %ntid\n"
      "movsr %r5, %smid\n"
      "exit\n";
  auto gpu = make_gpu(src, 64);
  gpu.run();
  for (unsigned t = 0; t < 64; ++t) {
    EXPECT_EQ(gpu.read_reg(t, 1), t % 16);
    EXPECT_EQ(gpu.read_reg(t, 2), t / 16);
    EXPECT_EQ(gpu.read_reg(t, 3), 16u);
    EXPECT_EQ(gpu.read_reg(t, 4), 64u);
    EXPECT_EQ(gpu.read_reg(t, 5), 0u);
  }
}

TEST(Gpgpu, DynamicThreadScalingImmediate) {
  // After SETTI 16 only threads 0..15 execute; NTID reflects the scale.
  const std::string src =
      "movsr %r0, %tid\n"
      "movi %r1, 5\n"
      "setti 16\n"
      "movsr %r2, %ntid\n"
      "addi %r1, %r1, 10\n"
      "exit\n";
  auto gpu = make_gpu(src, 256);
  const auto res = gpu.run();
  EXPECT_TRUE(res.exited);
  EXPECT_EQ(gpu.read_reg(0, 2), 16u);
  EXPECT_EQ(gpu.read_reg(0, 1), 15u);
  // Thread 200 never saw the instructions after the rescale.
  EXPECT_EQ(gpu.read_reg(200, 1), 5u);
  EXPECT_EQ(gpu.read_reg(200, 2), 0u);
}

TEST(Gpgpu, DynamicThreadScalingFromRegister) {
  // SETT samples the count from thread 0's register (the sequencer input).
  const std::string src =
      "movi %r1, 48\n"
      "sett %r1\n"
      "movsr %r2, %ntid\n"
      "exit\n";
  auto gpu = make_gpu(src, 256);
  gpu.run();
  EXPECT_EQ(gpu.read_reg(0, 2), 48u);
}

TEST(Gpgpu, ZeroOverheadLoopAccumulates) {
  const std::string src =
      "movi %r1, 0\n"
      "loopi 10, end\n"
      "addi %r1, %r1, 3\n"
      "end: exit\n";
  auto gpu = make_gpu(src, 16);
  gpu.run();
  EXPECT_EQ(gpu.read_reg(0, 1), 30u);
  EXPECT_EQ(gpu.read_reg(15, 1), 30u);
}

TEST(Gpgpu, NestedLoopsMultiply) {
  const std::string src =
      "movi %r1, 0\n"
      "loopi 5, outer_end\n"
      "loopi 4, inner_end\n"
      "addi %r1, %r1, 1\n"
      "inner_end:\n"
      "addi %r2, %r1, 0\n"
      "outer_end:\n"
      "exit\n";
  auto gpu = make_gpu(src, 16);
  gpu.run();
  EXPECT_EQ(gpu.read_reg(0, 1), 20u);
}

TEST(Gpgpu, LoopCountFromRegister) {
  const std::string src =
      "movi %r7, 6\n"
      "movi %r1, 0\n"
      "loop %r7, end\n"
      "addi %r1, %r1, 1\n"
      "end: exit\n";
  auto gpu = make_gpu(src, 16);
  gpu.run();
  EXPECT_EQ(gpu.read_reg(0, 1), 6u);
}

TEST(Gpgpu, LoopCountZeroSkipsBody) {
  const std::string src =
      "movi %r7, 0\n"
      "movi %r1, 99\n"
      "loop %r7, end\n"
      "movi %r1, 0\n"
      "end: exit\n";
  auto gpu = make_gpu(src, 16);
  const auto res = gpu.run();
  EXPECT_EQ(gpu.read_reg(0, 1), 99u);
  // Skipping the body redirects the PC and pays a flush bubble.
  EXPECT_EQ(res.perf.flush_cycles, test_cfg().decode_depth);
}

TEST(Gpgpu, CallRetSubroutine) {
  const std::string src =
      "movi %r1, 1\n"
      "call sub\n"
      "addi %r1, %r1, 100\n"
      "exit\n"
      "sub:\n"
      "addi %r1, %r1, 10\n"
      "ret\n";
  auto gpu = make_gpu(src, 16);
  gpu.run();
  EXPECT_EQ(gpu.read_reg(0, 1), 111u);
}

TEST(Gpgpu, BranchAnySemantics) {
  // BRP branches when ANY active thread has the predicate set.
  const std::string src =
      "movsr %r0, %tid\n"
      "movi %r1, 31\n"
      "setp.eq %p0, %r0, %r1\n"  // only thread 31 matches
      "brp %p0, taken\n"
      "movi %r2, 1\n"
      "exit\n"
      "taken:\n"
      "movi %r2, 2\n"
      "exit\n";
  auto gpu = make_gpu(src, 32);
  gpu.run();
  EXPECT_EQ(gpu.read_reg(0, 2), 2u);

  // With only 16 threads active, thread 31 never sets p0: not taken.
  auto gpu2 = make_gpu(src, 16);
  gpu2.run();
  EXPECT_EQ(gpu2.read_reg(0, 2), 1u);
}

TEST(Gpgpu, BranchNoneSemantics) {
  const std::string src =
      "movsr %r0, %tid\n"
      "movi %r1, 1000\n"
      "setp.gt %p0, %r0, %r1\n"  // nobody exceeds 1000
      "brn %p0, taken\n"
      "movi %r2, 1\n"
      "exit\n"
      "taken:\n"
      "movi %r2, 2\n"
      "exit\n";
  auto gpu = make_gpu(src, 64);
  gpu.run();
  EXPECT_EQ(gpu.read_reg(0, 2), 2u);
}

TEST(Gpgpu, ConvergenceLoopWithBrp) {
  // Iterate: halve every value until all are zero (BRP back-edge).
  const std::string src =
      "movsr %r0, %tid\n"
      "addi %r1, %r0, 1\n"
      "again:\n"
      "shri %r1, %r1, 1\n"
      "movi %r2, 0\n"
      "setp.ne %p0, %r1, %r2\n"
      "brp %p0, again\n"
      "sts [%r0], %r1\n"
      "exit\n";
  auto gpu = make_gpu(src, 64);
  const auto res = gpu.run();
  EXPECT_TRUE(res.exited);
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(gpu.read_shared(i), 0u);
  }
  EXPECT_GT(res.perf.flush_cycles, 0u);
}

TEST(Gpgpu, DatapathOpsInKernel) {
  const std::string src =
      "movsr %r0, %tid\n"
      "movi %r1, 0x10001\n"
      "mul.lo %r2, %r0, %r1\n"
      "mul.hi %r3, %r1, %r1\n"
      "sari %r4, %r2, 3\n"
      "abs %r5, %r4\n"
      "popc %r6, %r1\n"
      "exit\n";
  auto gpu = make_gpu(src, 32);
  gpu.run();
  for (unsigned t = 0; t < 32; ++t) {
    const std::uint32_t lo = t * 0x10001u;
    EXPECT_EQ(gpu.read_reg(t, 2), lo);
    EXPECT_EQ(gpu.read_reg(t, 3),
              static_cast<std::uint32_t>(
                  (0x10001LL * 0x10001LL) >> 32));
    EXPECT_EQ(gpu.read_reg(t, 4),
              static_cast<std::uint32_t>(static_cast<std::int32_t>(lo) >> 3));
    EXPECT_EQ(gpu.read_reg(t, 6), 2u);
  }
}

TEST(Gpgpu, RunWithoutExitReportsBudgetExhausted) {
  const std::string src =
      "again: movi %r1, 1\n"
      "bra again\n";
  auto gpu = make_gpu(src, 16);
  const auto res = gpu.run(0, /*max_instructions=*/100);
  EXPECT_FALSE(res.exited);
  EXPECT_EQ(res.perf.instructions, 100u);
}

TEST(Gpgpu, PcPastEndTraps) {
  auto gpu = make_gpu("nop\nnop\n", 16);
  EXPECT_THROW(gpu.run(), Error);
}

TEST(Gpgpu, OutOfBoundsAccessTraps) {
  auto gpu = make_gpu("movi %r1, 100000\nlds %r2, [%r1]\nexit\n", 16);
  EXPECT_THROW(gpu.run(), Error);
  auto gpu2 = make_gpu("movi %r1, 100000\nsts [%r1], %r1\nexit\n", 16);
  EXPECT_THROW(gpu2.run(), Error);
}

TEST(Gpgpu, ValidationRejectsPredicatesWhenDisabled) {
  auto cfg = test_cfg(64);
  cfg.predicates_enabled = false;
  Gpgpu gpu(cfg);
  EXPECT_THROW(
      gpu.load_program(assembler::assemble("setp.eq %p0, %r0, %r1\nexit\n")),
      Error);
  EXPECT_THROW(
      gpu.load_program(assembler::assemble("@p0 add %r0, %r0, %r0\nexit\n")),
      Error);
  EXPECT_THROW(
      gpu.load_program(
          assembler::assemble("x: brp %p0, x\nexit\n")),
      Error);
  // Plain programs still load.
  gpu.load_program(assembler::assemble("add %r0, %r0, %r0\nexit\n"));
}

TEST(Gpgpu, ValidationRejectsOutOfRangeRegisters) {
  auto cfg = test_cfg(64);
  cfg.regs_per_thread = 8;
  Gpgpu gpu(cfg);
  EXPECT_THROW(
      gpu.load_program(assembler::assemble("add %r8, %r0, %r0\nexit\n")),
      Error);
  EXPECT_THROW(
      gpu.load_program(assembler::assemble("add %r0, %r9, %r0\nexit\n")),
      Error);
}

TEST(Gpgpu, ValidationRejectsBadLoopGeometry) {
  Gpgpu gpu(test_cfg(64));
  // Loop end must lie strictly after the loop instruction.
  std::vector<isa::Instr> prog(3);
  prog[0].op = isa::Opcode::LOOPI;
  prog[0].imm = (2 << 16) | 0;  // end_pc == 0 <= pc+1
  prog[1].op = isa::Opcode::NOP;
  prog[2].op = isa::Opcode::EXIT;
  EXPECT_THROW(gpu.load_program(Program(prog)), Error);
}

TEST(Gpgpu, ValidationRejectsSettiOutOfRange) {
  Gpgpu gpu(test_cfg(64));
  std::vector<isa::Instr> prog(2);
  prog[0].op = isa::Opcode::SETTI;
  prog[0].imm = 2000;  // > max_threads of this instance
  prog[1].op = isa::Opcode::EXIT;
  EXPECT_THROW(gpu.load_program(Program(prog)), Error);
}

TEST(Gpgpu, ProgramTooLargeForImem) {
  auto cfg = test_cfg(16);
  cfg.imem_depth = 4;
  Gpgpu gpu(cfg);
  EXPECT_THROW(
      gpu.load_program(assembler::assemble("nop\nnop\nnop\nnop\nexit\n")),
      Error);
}

TEST(Gpgpu, ResetStateZeroesEverything) {
  auto gpu = make_gpu("movsr %r1, %tid\nsts [%r1], %r1\nexit\n", 32);
  gpu.run();
  EXPECT_NE(gpu.read_reg(5, 1), 0u);
  gpu.reset_state();
  EXPECT_EQ(gpu.read_reg(5, 1), 0u);
  EXPECT_EQ(gpu.read_shared(5), 0u);
}

TEST(Gpgpu, HostBackdoorAccessors) {
  Gpgpu gpu(test_cfg(64));
  gpu.write_reg(17, 3, 0xabcdu);
  EXPECT_EQ(gpu.read_reg(17, 3), 0xabcdu);
  gpu.write_pred(9, 2, true);
  EXPECT_TRUE(gpu.read_pred(9, 2));
  gpu.write_pred(9, 2, false);
  EXPECT_FALSE(gpu.read_pred(9, 2));
  gpu.write_shared(123, 0x5555u);
  EXPECT_EQ(gpu.read_shared(123), 0x5555u);
}

TEST(Gpgpu, SetThreadCountValidation) {
  Gpgpu gpu(test_cfg(64));
  EXPECT_THROW(gpu.set_thread_count(0), Error);
  EXPECT_THROW(gpu.set_thread_count(65), Error);
  gpu.set_thread_count(64);
  EXPECT_EQ(gpu.thread_count(), 64u);
}

TEST(Gpgpu, PartialThreadBlockRowsRoundUp) {
  // 40 threads on 16 SPs -> 3 rows; the tail row is partially filled.
  const std::string src = "movsr %r1, %tid\nexit\n";
  auto gpu = make_gpu(src, 64);
  gpu.set_thread_count(40);
  const auto res = gpu.run();
  EXPECT_EQ(res.perf.thread_rows, 3u);
  EXPECT_EQ(gpu.read_reg(39, 1), 39u);
  EXPECT_EQ(gpu.read_reg(40, 1), 0u);  // inactive thread untouched
}

}  // namespace
}  // namespace simt::core
