// Tests for the shared utilities: RNG, fixed-point helpers, table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace simt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  unsigned same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0u);
}

TEST(Rng, NextBelowIsInRange) {
  Xoshiro256 rng(9);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Xoshiro256 rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(12);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(FixedPoint, RoundTripQ16) {
  for (const double v : {0.0, 1.0, -1.0, 0.5, -0.25, 1234.5678}) {
    EXPECT_NEAR(from_fixed(to_fixed(v, 16), 16), v, 1.0 / (1 << 15));
  }
}

TEST(FixedPoint, RoundsToNearest) {
  EXPECT_EQ(to_fixed(0.5, 0), 1);
  EXPECT_EQ(to_fixed(-0.5, 0), -1);
  EXPECT_EQ(to_fixed(0.49, 0), 0);
}

TEST(FixedPoint, SaturatesAtInt32Range) {
  EXPECT_EQ(to_fixed(1e15, 16), 2147483647);
  EXPECT_EQ(to_fixed(-1e15, 16), INT32_MIN);
}

TEST(FixedPoint, FixedMulMatchesDouble) {
  const std::int32_t a = to_fixed(3.25, 16);
  const std::int32_t b = to_fixed(-2.5, 16);
  EXPECT_NEAR(from_fixed(fixed_mul(a, b, 16), 16), -8.125, 1e-3);
}

TEST(Table, AlignsColumnsAndSeparators) {
  Table t({"Module", "ALMs"});
  t.add_row({"GPGPU", "7038"});
  t.add_row({"SP", "371"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Module"), std::string::npos);
  EXPECT_NE(s.find("| GPGPU"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
  // All lines equal length (alignment).
  std::size_t len = std::string::npos;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto nl = s.find('\n', pos);
    const auto line_len = nl - pos;
    if (len == std::string::npos) {
      len = line_len;
    }
    EXPECT_EQ(line_len, len);
    pos = nl + 1;
  }
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_mhz(956.4), "956 MHz");
  EXPECT_EQ(fmt_ratio(1.5), "1.50x");
  EXPECT_EQ(fmt_int(24534), "24534");
}

TEST(Error, CarriesMessage) {
  try {
    throw Error("something specific");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "something specific");
  }
}

}  // namespace
}  // namespace simt
