// Tests pinning the Section 3.1 pipeline-control arithmetic: the registered
// end-of-instruction comparisons, the width/depth counter sequences, the
// single-cycle trap, and the issue-gap (interlock) model.
#include "core/pipeline_control.hpp"

#include <gtest/gtest.h>

namespace simt::core {
namespace {

using isa::TimingClass;

TEST(ClocksFor, PaperExamples) {
  // "an application example with 512 threads would require 32 clocks
  // (512/16) per operation instruction"
  EXPECT_EQ(clocks_for(TimingClass::Operation, 32, 16, 4, 1), 32u);
  // "A load instruction would require 4 clocks per block width, and run for
  // a depth of 32" -> 128 clocks total.
  EXPECT_EQ(clocks_for(TimingClass::Load, 32, 16, 4, 1), 128u);
  // Store: 16 clocks per row through the single write port.
  EXPECT_EQ(clocks_for(TimingClass::Store, 32, 16, 4, 1), 512u);
  // Single-cycle class.
  EXPECT_EQ(clocks_for(TimingClass::Single, 32, 16, 4, 1), 1u);
}

TEST(ClocksFor, WidthFactors) {
  EXPECT_EQ(width_factor_for(TimingClass::Operation, 16, 4, 1), 1u);
  EXPECT_EQ(width_factor_for(TimingClass::Load, 16, 4, 1), 4u);
  EXPECT_EQ(width_factor_for(TimingClass::Store, 16, 4, 1), 16u);
  // Port scaling: an 8R shared memory would halve the load width.
  EXPECT_EQ(width_factor_for(TimingClass::Load, 16, 8, 1), 2u);
  EXPECT_EQ(width_factor_for(TimingClass::Store, 16, 4, 4), 4u);
}

TEST(PipelineControl, OperationCountsToDepthMinusTwo) {
  // 32-row operation: the counter counts 0..30 ("0 to (31-1)"), the
  // comparison fires at 30, and the registered signal ends the instruction
  // on clock 32.
  PipelineControl pc;
  pc.start(/*rows=*/32, /*width=*/1);
  unsigned clocks = 0;
  bool fired_at_30 = false;
  while (true) {
    const auto snap = pc.snapshot();
    if (snap.depth_count == 30 && !snap.end_registered) {
      fired_at_30 = true;  // comparison value is rows-2 = 30
    }
    ++clocks;
    if (pc.tick()) {
      break;
    }
  }
  EXPECT_EQ(clocks, 32u);
  EXPECT_TRUE(fired_at_30);
}

TEST(PipelineControl, LoadEndsAtDepth31Width2) {
  // "the end of the load instruction would be signalled when the depth was
  // 31, but the width was only at 2, which is the width and depth
  // combination one cycle before the end."
  PipelineControl pc;
  pc.start(/*rows=*/32, /*width=*/4);
  unsigned clocks = 0;
  unsigned fire_depth = 0, fire_width = 0;
  while (true) {
    const auto before = pc.snapshot();
    ++clocks;
    const bool done = pc.tick();
    const auto after = pc.snapshot();
    if (!before.end_registered && after.end_registered) {
      fire_depth = before.depth_count;
      fire_width = before.width_count;
    }
    if (done) {
      break;
    }
  }
  EXPECT_EQ(clocks, 128u);
  EXPECT_EQ(fire_depth, 31u);
  EXPECT_EQ(fire_width, 2u);
}

TEST(PipelineControl, WidthCounterCountsModulo) {
  // "The width counter would count modulo 3, at which point the load depth
  // counter would be incremented" -- i.e. values 0..3 with depth bumping on
  // wrap.
  PipelineControl pc;
  pc.start(/*rows=*/2, /*width=*/4);
  std::vector<std::pair<unsigned, unsigned>> seq;
  while (true) {
    const auto s = pc.snapshot();
    seq.emplace_back(s.depth_count, s.width_count);
    if (pc.tick()) {
      break;
    }
  }
  const std::vector<std::pair<unsigned, unsigned>> expect = {
      {0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 0}, {1, 1}, {1, 2}, {1, 3}};
  EXPECT_EQ(seq, expect);
}

TEST(PipelineControl, MatchesClocksForAcrossShapes) {
  for (const auto tc :
       {TimingClass::Operation, TimingClass::Load, TimingClass::Store}) {
    for (unsigned rows : {1u, 2u, 3u, 8u, 32u, 64u}) {
      const unsigned width = width_factor_for(tc, 16, 4, 1);
      const unsigned expected = clocks_for(tc, rows, 16, 4, 1);
      PipelineControl pc;
      if (expected == 1) {
        pc.start_single_cycle();
      } else {
        pc.start(rows, width);
      }
      unsigned clocks = 0;
      while (true) {
        ++clocks;
        if (pc.tick()) {
          break;
        }
      }
      EXPECT_EQ(clocks, expected) << "rows=" << rows << " width=" << width;
    }
  }
}

TEST(PipelineControl, SingleCycleTrap) {
  // "There is the possibility of an instruction that requires only a single
  // clock cycle, a case which needs separate processing ... trapped by the
  // previous instruction decode pipeline stage."
  PipelineControl pc;
  pc.start_single_cycle();
  EXPECT_TRUE(pc.busy());
  EXPECT_TRUE(pc.tick());
  EXPECT_FALSE(pc.busy());
}

TEST(PipelineControl, TwoClockOperationUsesRegisteredSignal) {
  // rows=2 is the smallest counted case: comparison at depth 0, end at 2.
  PipelineControl pc;
  pc.start(/*rows=*/2, /*width=*/1);
  EXPECT_FALSE(pc.tick());
  EXPECT_TRUE(pc.snapshot().end_registered);
  EXPECT_TRUE(pc.tick());
}

TEST(MinIssueGap, OperationChainNeedsLatencyPlusOne) {
  // op -> dependent op, same width: gap = latency + 1; with a 32-row
  // producer the natural spacing already covers it (no stall).
  EXPECT_EQ(min_issue_gap(1, 1, 32, 8), 9u);
  EXPECT_EQ(min_issue_gap(1, 1, 1, 8), 9u);
}

TEST(MinIssueGap, WideProducerSkewsByRowDistance) {
  // load (width 4) feeding an op (width 1): the producer's last row issues
  // 3*(rows-1) later than the consumer's would, so the gap grows.
  EXPECT_EQ(min_issue_gap(4, 1, 32, 6), 3u * 31u + 7u);
  // Narrow producer feeding a wide consumer needs no skew.
  EXPECT_EQ(min_issue_gap(1, 4, 32, 6), 7u);
}

}  // namespace
}  // namespace simt::core
