// Tests for the analytical resource model against Table 1 and the Section 5
// register census.
#include "area/resource_model.hpp"

#include <gtest/gtest.h>

namespace simt::area {
namespace {

CoreResources flagship(AreaOptions opt = {}) {
  return estimate(core::CoreConfig::table1_flagship(), opt);
}

TEST(Area, Table1SpRow) {
  const auto r = flagship();
  EXPECT_EQ(r.sp_total.alms, 371u);
  EXPECT_EQ(r.sp_total.regs_total(), 1337u);
  EXPECT_EQ(r.sp_total.m20k, 4u);
  EXPECT_EQ(r.sp_total.dsp, 2u);
}

TEST(Area, Table1MulShiftRow) {
  const auto r = flagship();
  EXPECT_EQ(r.sp_mul_shift.alms, 145u);
  EXPECT_EQ(r.sp_mul_shift.regs_total(), 424u);
  EXPECT_EQ(r.sp_mul_shift.m20k, 0u);
  EXPECT_EQ(r.sp_mul_shift.dsp, 2u);
}

TEST(Area, Table1LogicRow) {
  const auto r = flagship();
  EXPECT_EQ(r.sp_logic.alms, 83u);
  EXPECT_EQ(r.sp_logic.regs_total(), 424u);
  EXPECT_EQ(r.sp_logic.m20k, 0u);
  EXPECT_EQ(r.sp_logic.dsp, 0u);
}

TEST(Area, Table1InstRow) {
  const auto r = flagship();
  EXPECT_EQ(r.inst.alms, 275u);
  EXPECT_EQ(r.inst.regs_total(), 651u);
  EXPECT_EQ(r.inst.m20k, 3u);
  EXPECT_EQ(r.inst.dsp, 0u);
}

TEST(Area, Table1SharedRow) {
  const auto r = flagship();
  EXPECT_EQ(r.shared.alms, 133u);
  EXPECT_EQ(r.shared.regs_total(), 233u);
  // Self-consistent M20K accounting: 4 read copies x 8 blocks for 16 KB
  // (see DESIGN.md on the paper's internal inconsistency here).
  EXPECT_EQ(r.shared.m20k, 32u);
}

TEST(Area, Table1GpgpuTotals) {
  const auto r = flagship();
  EXPECT_EQ(r.gpgpu.regs_total(), 24534u);
  EXPECT_EQ(r.gpgpu.m20k, 99u);
  EXPECT_EQ(r.gpgpu.dsp, 32u);
  // Placed ALMs plus the unreachable in-box overhead the paper reports.
  EXPECT_EQ(r.gpgpu.alms, 16u * 371u + 275u + 133u);
  EXPECT_NEAR(r.in_box_alms, 7038.0, 10.0);
}

TEST(Area, RegisterStyleCensus) {
  // Section 5: "the number of primary registers used was 763, the secondary
  // registers 154 ... and 420 hyper registers" for the SP.
  const auto r = flagship();
  EXPECT_EQ(r.sp_total.regs_primary, 763u);
  EXPECT_EQ(r.sp_total.regs_secondary, 154u);
  EXPECT_EQ(r.sp_total.regs_hyper, 420u);
}

TEST(Area, PredicatesCostFiftyPercentMoreLogic) {
  // Section 2: "they typically increase the logic resources of the
  // processor by 50%."
  auto cfg = core::CoreConfig::table1_flagship();
  cfg.predicates_enabled = true;
  const auto with = estimate(cfg, {});
  const auto without = flagship();
  const double ratio = static_cast<double>(with.sp_total.alms) /
                       static_cast<double>(without.sp_total.alms);
  EXPECT_NEAR(ratio, 1.5, 0.02);
}

TEST(Area, BarrelShifterVariantAddsHundredAlmsPerSp) {
  // Section 4: "A 32-bit shifter requires approximately 50 ALMs, or 100
  // ALMs for a left and right shift pair."
  AreaOptions opt;
  opt.shifter = hw::ShifterImpl::LogicBarrel;
  const auto barrel = flagship(opt);
  EXPECT_EQ(barrel.sp_shifter.alms, 100u);
  // The integrated variant drops the pair but adds the one-hot/unary logic.
  const auto integrated = flagship();
  EXPECT_EQ(integrated.sp_shifter.alms, 0u);
  EXPECT_GT(barrel.sp_total.alms, integrated.sp_total.alms);
}

TEST(Area, ShiftersAreAboutAQuarterOfSoftLogicInBarrelVariant) {
  // "the shift pairs in the 16 SPs make up almost 1/4 the total soft logic
  // (c. 7000 ALMs) of the processor."
  AreaOptions opt;
  opt.shifter = hw::ShifterImpl::LogicBarrel;
  const auto r = flagship(opt);
  const double frac =
      (16.0 * r.sp_shifter.alms) / static_cast<double>(r.in_box_alms);
  EXPECT_GT(frac, 0.18);
  EXPECT_LT(frac, 0.28);
}

TEST(Area, ScalesWithThreadSpace) {
  // Quadrupling the thread space grows the register files (M20K), not the
  // datapath logic.
  auto small = core::CoreConfig::table1_flagship();
  auto large = small;
  large.max_threads = 4096;
  large.regs_per_thread = 16;  // 64K registers -- the maximum configuration
  const auto rs = estimate(small, {});
  const auto rl = estimate(large, {});
  EXPECT_EQ(rs.sp_mul_shift.alms, rl.sp_mul_shift.alms);
  EXPECT_GT(rl.sp_total.m20k, rs.sp_total.m20k);
}

TEST(Area, SharedMemoryM20kScalesWithCapacity) {
  auto cfg = core::CoreConfig::table1_flagship();
  cfg.shared_mem_words = 8192;  // 32 KB
  const auto r = estimate(cfg, {});
  EXPECT_EQ(r.shared.m20k, 64u);
}

TEST(Area, FormatTable1ContainsPaperLayout) {
  const auto text = format_table1(flagship());
  EXPECT_NE(text.find("GPGPU"), std::string::npos);
  EXPECT_NE(text.find("Mul+Sft"), std::string::npos);
  EXPECT_NE(text.find("371"), std::string::npos);
  EXPECT_NE(text.find("24534"), std::string::npos);
  EXPECT_NE(text.find("hyper=420"), std::string::npos);
}

}  // namespace
}  // namespace simt::area
