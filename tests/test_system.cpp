// Tests for the multi-core system layer (Section 6 future work).
#include "system/multicore.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "kernels/kernels.hpp"

namespace simt::system {
namespace {

SystemConfig small_system(unsigned cores) {
  SystemConfig cfg;
  cfg.num_cores = cores;
  cfg.core.max_threads = 128;
  cfg.core.shared_mem_words = 1024;
  return cfg;
}

TEST(System, SplitRangeCoversAll) {
  const auto parts = MultiCoreSystem::split_range(100, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], (std::pair<unsigned, unsigned>{0, 33}));
  EXPECT_EQ(parts[1], (std::pair<unsigned, unsigned>{33, 66}));
  EXPECT_EQ(parts[2], (std::pair<unsigned, unsigned>{66, 100}));
}

TEST(System, CoresRunIndependently) {
  MultiCoreSystem sys(small_system(3));
  sys.load_kernel_all(kernels::vecadd(0, 128, 256));
  // Distinct data per core.
  for (unsigned c = 0; c < 3; ++c) {
    for (unsigned i = 0; i < 128; ++i) {
      sys.core(c).write_shared(i, i * (c + 1));
      sys.core(c).write_shared(128 + i, 10 * (c + 1));
    }
  }
  const auto res = sys.run({{0, 128}, {1, 128}, {2, 128}});
  ASSERT_EQ(res.per_core.size(), 3u);
  for (unsigned c = 0; c < 3; ++c) {
    EXPECT_TRUE(res.per_core[c].exited);
    for (unsigned i = 0; i < 128; ++i) {
      EXPECT_EQ(sys.core(c).read_shared(256 + i), i * (c + 1) + 10 * (c + 1))
          << "core " << c << " i " << i;
    }
  }
}

TEST(System, WallClockUsesMaxCyclesOverCores) {
  MultiCoreSystem sys(small_system(2));
  sys.load_kernel(0, kernels::vecadd(0, 128, 256));
  // Core 1 runs a much longer kernel (a loop).
  sys.load_kernel(1,
                  "movi %r1, 0\n"
                  "loopi 1000, end\n"
                  "addi %r2, %r1, 1\n"
                  "end: exit\n");
  const auto res = sys.run({{0, 128}, {1, 16}});
  EXPECT_EQ(res.max_cycles, std::max(res.per_core[0].perf.cycles,
                                     res.per_core[1].perf.cycles));
  EXPECT_EQ(res.max_cycles, res.per_core[1].perf.cycles);
}

TEST(System, ClockModelFollowsTable2Regime) {
  SystemConfig cfg = small_system(1);
  EXPECT_DOUBLE_EQ(cfg.clock_mhz(), 927.0);  // single tightly packed core
  cfg.num_cores = 3;
  EXPECT_DOUBLE_EQ(cfg.clock_mhz(), 854.0);  // multi-stamp system clock
}

TEST(System, WallClockAccountsRealizedClock) {
  MultiCoreSystem sys(small_system(1));
  sys.load_kernel_all(kernels::vecadd(0, 128, 256));
  const auto res = sys.run({{0, 128}});
  EXPECT_NEAR(res.wall_us,
              static_cast<double>(res.max_cycles) / 927.0, 1e-9);
}

TEST(System, DispatchValidation) {
  MultiCoreSystem sys(small_system(2));
  sys.load_kernel_all(kernels::vecadd(0, 128, 256));
  EXPECT_THROW(sys.run({{5, 16}}), Error);           // no such core
  EXPECT_THROW(sys.run({{0, 16}, {0, 16}}), Error);  // duplicate core
  EXPECT_THROW(MultiCoreSystem(SystemConfig{0, {}, 927, 854}), Error);
}

TEST(System, AggregateThreadOps) {
  MultiCoreSystem sys(small_system(2));
  sys.load_kernel_all(kernels::vecadd(0, 128, 256));
  const auto res = sys.run({{0, 128}, {1, 64}});
  EXPECT_EQ(res.total_thread_ops(), res.per_core[0].perf.thread_ops +
                                        res.per_core[1].perf.thread_ops);
}

}  // namespace
}  // namespace simt::system
