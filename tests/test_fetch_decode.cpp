// Tests for the Fig. 2 fetch/decode sequencing: branch zeroing bubbles, the
// branch-return stack, the address history, and the zero-overhead loop
// hardware.
#include "core/fetch_decode.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace simt::core {
namespace {

CoreConfig small_cfg() {
  CoreConfig cfg;
  cfg.max_threads = 16;
  cfg.decode_depth = 6;
  return cfg;
}

TEST(FetchDecode, AdvanceIsFreeOfBubbles) {
  const auto cfg = small_cfg();
  FetchDecode fd(cfg);
  fd.reset();
  EXPECT_EQ(fd.pc(), 0u);
  EXPECT_EQ(fd.advance(), 0u);
  EXPECT_EQ(fd.pc(), 1u);
}

TEST(FetchDecode, TakenBranchZeroesDecodeDepth) {
  // "A branch taken zeroes out the following instructions in the pipeline."
  const auto cfg = small_cfg();
  FetchDecode fd(cfg);
  fd.reset();
  EXPECT_EQ(fd.branch_to(10), cfg.decode_depth);
  EXPECT_EQ(fd.pc(), 10u);
}

TEST(FetchDecode, CallRetUseReturnStack) {
  const auto cfg = small_cfg();
  FetchDecode fd(cfg);
  fd.reset();
  fd.advance();  // pc = 1
  EXPECT_EQ(fd.call(20), cfg.decode_depth);
  EXPECT_EQ(fd.pc(), 20u);
  EXPECT_EQ(fd.call_depth(), 1u);
  EXPECT_EQ(fd.ret(), cfg.decode_depth);
  EXPECT_EQ(fd.pc(), 2u);  // return to call site + 1
  EXPECT_EQ(fd.call_depth(), 0u);
}

TEST(FetchDecode, NestedCalls) {
  const auto cfg = small_cfg();
  FetchDecode fd(cfg);
  fd.reset();
  fd.call(10);
  fd.call(20);
  fd.call(30);
  EXPECT_EQ(fd.call_depth(), 3u);
  fd.ret();
  EXPECT_EQ(fd.pc(), 21u);
  fd.ret();
  EXPECT_EQ(fd.pc(), 11u);
  fd.ret();
  EXPECT_EQ(fd.pc(), 1u);
}

TEST(FetchDecode, StackOverflowAndUnderflowTrap) {
  auto cfg = small_cfg();
  cfg.call_stack_depth = 2;
  FetchDecode fd(cfg);
  fd.reset();
  fd.call(10);
  fd.call(20);
  EXPECT_THROW(fd.call(30), Error);
  fd.ret();
  fd.ret();
  EXPECT_THROW(fd.ret(), Error);
}

TEST(FetchDecode, ZeroOverheadLoopRunsCountTimes) {
  const auto cfg = small_cfg();
  FetchDecode fd(cfg);
  fd.reset();
  // loop at pc 0, body = pcs 1..2, end_pc = 3, count = 4.
  EXPECT_EQ(fd.loop_begin(4, 3), 0u);  // entering the body costs nothing
  std::vector<std::uint32_t> trace;
  for (int i = 0; i < 8; ++i) {
    trace.push_back(fd.pc());
    EXPECT_EQ(fd.advance(), 0u);  // loop-backs are bubble-free
  }
  // Body (1,2) four times, then fall through to 3.
  const std::vector<std::uint32_t> expect = {1, 2, 1, 2, 1, 2, 1, 2};
  EXPECT_EQ(trace, expect);
  EXPECT_EQ(fd.pc(), 3u);
  EXPECT_EQ(fd.loop_depth(), 0u);
}

TEST(FetchDecode, LoopCountOneRunsOnceWithoutHardware) {
  const auto cfg = small_cfg();
  FetchDecode fd(cfg);
  fd.reset();
  EXPECT_EQ(fd.loop_begin(1, 3), 0u);
  EXPECT_EQ(fd.loop_depth(), 0u);  // no loop entry needed
  fd.advance();
  fd.advance();
  EXPECT_EQ(fd.pc(), 3u);
}

TEST(FetchDecode, LoopCountZeroSkipsBodyLikeATakenBranch) {
  const auto cfg = small_cfg();
  FetchDecode fd(cfg);
  fd.reset();
  EXPECT_EQ(fd.loop_begin(0, 3), cfg.decode_depth);
  EXPECT_EQ(fd.pc(), 3u);
}

TEST(FetchDecode, NestedLoops) {
  const auto cfg = small_cfg();
  FetchDecode fd(cfg);
  fd.reset();
  // outer: loop at 0, body 1..4 (end 5), 2 iterations
  // inner: loop at 1, body 2..3 (end 4), 3 iterations
  fd.loop_begin(2, 5);  // pc -> 1
  std::vector<std::uint32_t> trace;
  for (int i = 0; i < 30 && fd.pc() != 5; ++i) {
    trace.push_back(fd.pc());
    if (fd.pc() == 1) {
      fd.loop_begin(3, 4);
    } else {
      fd.advance();
    }
  }
  // Outer body: 1, (2,3)x3, 4 -- twice.
  const std::vector<std::uint32_t> expect = {1, 2, 3, 2, 3, 2, 3, 4,
                                             1, 2, 3, 2, 3, 2, 3, 4};
  EXPECT_EQ(trace, expect);
  EXPECT_EQ(fd.pc(), 5u);
}

TEST(FetchDecode, LoopStackOverflowTraps) {
  auto cfg = small_cfg();
  cfg.loop_stack_depth = 2;
  FetchDecode fd(cfg);
  fd.reset();
  fd.loop_begin(2, 10);
  fd.loop_begin(2, 10);
  EXPECT_THROW(fd.loop_begin(2, 10), Error);
}

TEST(FetchDecode, HistoryRecordsRecentAddresses) {
  // "a short history of addresses to be kept for determining branch
  // returns" (Section 3).
  const auto cfg = small_cfg();
  FetchDecode fd(cfg);
  fd.reset();
  fd.advance();
  fd.advance();
  fd.branch_to(9);
  const auto& h = fd.history();
  ASSERT_GE(h.size(), 4u);
  EXPECT_EQ(h[h.size() - 4], 0u);
  EXPECT_EQ(h[h.size() - 3], 1u);
  EXPECT_EQ(h[h.size() - 2], 2u);
  EXPECT_EQ(h[h.size() - 1], 9u);
}

TEST(FetchDecode, HistoryIsBounded) {
  const auto cfg = small_cfg();
  FetchDecode fd(cfg);
  fd.reset();
  for (int i = 0; i < 100; ++i) {
    fd.advance();
  }
  EXPECT_LE(fd.history().size(), 16u);
}

}  // namespace
}  // namespace simt::core
