// Cycle-accuracy tests: exact clock counts for known kernels, pinned to the
// Section 3.1 arithmetic (operation = depth, load = 4 x depth, store = 16 x
// depth, single-cycle class, branch zeroing, pipeline interlocks).
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "core/gpgpu.hpp"

namespace simt::core {
namespace {

CoreConfig cfg512() {
  CoreConfig cfg;
  cfg.num_sps = 16;
  cfg.max_threads = 512;
  cfg.regs_per_thread = 16;
  cfg.shared_mem_words = 4096;
  cfg.predicates_enabled = true;
  // Pin the pipeline geometry these tests encode.
  cfg.decode_depth = 6;
  cfg.alu_latency = 8;
  cfg.mem_latency = 6;
  return cfg;
}

PerfCounters run_counters(const std::string& src, unsigned threads) {
  Gpgpu gpu(cfg512());
  gpu.load_program(assembler::assemble(src));
  gpu.set_thread_count(threads);
  const auto res = gpu.run();
  EXPECT_TRUE(res.exited);
  return res.perf;
}

TEST(CycleModel, OperationCostIsThreadBlockDepth) {
  // "512 threads would require 32 clocks (512/16) per operation".
  for (const unsigned threads : {16u, 64u, 256u, 512u}) {
    const auto perf = run_counters("movsr %r1, %tid\nexit\n", threads);
    const unsigned rows = (threads + 15) / 16;
    // fill (6) + op (rows) + exit (1).
    EXPECT_EQ(perf.cycles, 6u + rows + 1u) << threads;
  }
}

TEST(CycleModel, VecAdd512Exact) {
  const std::string src =
      "movsr %r0, %tid\n"
      "lds %r1, [%r0 + 0]\n"
      "lds %r2, [%r0 + 512]\n"
      "add %r3, %r1, %r2\n"
      "sts [%r0 + 1024], %r3\n"
      "exit\n";
  const auto perf = run_counters(src, 512);
  // fill 6 + movsr 32 + lds 128 + lds 128 + add 32 + sts 512 + exit 1.
  EXPECT_EQ(perf.cycles, 6u + 32u + 128u + 128u + 32u + 512u + 1u);
  EXPECT_EQ(perf.stall_cycles, 0u);  // 32-row blocks hide all latencies
  EXPECT_EQ(perf.fill_cycles, 6u);
  EXPECT_EQ(perf.issue_cycles, 32u + 128u + 128u + 32u + 512u + 1u);
}

TEST(CycleModel, LoadCostIsFourClocksPerRow) {
  const auto perf = run_counters(
      "movsr %r0, %tid\nlds %r1, [%r0]\nexit\n", 512);
  EXPECT_EQ(perf.cycles, 6u + 32u + 128u + 1u);
}

TEST(CycleModel, StoreCostIsSixteenClocksPerRow) {
  const auto perf = run_counters(
      "movsr %r0, %tid\nsts [%r0], %r0\nexit\n", 512);
  EXPECT_EQ(perf.cycles, 6u + 32u + 512u + 1u);
}

TEST(CycleModel, DynamicScalingCutsStoreCost) {
  // "writing back only a subset of the threads ... can significantly reduce
  // the number of clocks required for the STO instruction."
  const std::string src =
      "movsr %r0, %tid\n"
      "setti 16\n"
      "sts [%r0], %r0\n"
      "exit\n";
  const auto perf = run_counters(src, 512);
  // fill 6 + movsr 32 + setti 1 + sts (1 row x 16) + exit 1.
  EXPECT_EQ(perf.cycles, 6u + 32u + 1u + 16u + 1u);
}

TEST(CycleModel, SmallBlockExposesAluLatency) {
  // A 1-row dependent chain cannot hide the 8-clock ALU latency: the
  // consumer stalls until the producer's writeback (latency + 1 spacing).
  const std::string src =
      "movi %r1, 5\n"
      "addi %r2, %r1, 1\n"
      "exit\n";
  const auto perf = run_counters(src, 16);
  // fill 6; movi at 6 (1 clk); addi must start at 6+8+1=15; exit at 16.
  EXPECT_EQ(perf.cycles, 17u);
  EXPECT_EQ(perf.stall_cycles, 8u);
}

TEST(CycleModel, IndependentOpsDoNotStall) {
  const std::string src =
      "movi %r1, 5\n"
      "movi %r2, 6\n"
      "movi %r3, 7\n"
      "exit\n";
  const auto perf = run_counters(src, 16);
  EXPECT_EQ(perf.cycles, 6u + 3u + 1u);
  EXPECT_EQ(perf.stall_cycles, 0u);
}

TEST(CycleModel, LargeBlocksHideAluLatency) {
  // With 512 threads the 32-clock row sweep exceeds latency+1: no stall.
  const std::string src =
      "movsr %r1, %tid\n"
      "addi %r2, %r1, 1\n"
      "exit\n";
  const auto perf = run_counters(src, 512);
  EXPECT_EQ(perf.stall_cycles, 0u);
  EXPECT_EQ(perf.cycles, 6u + 32u + 32u + 1u);
}

TEST(CycleModel, LoadToUseSkewForWideProducer) {
  // load (width 4) feeding an op: consumer rows sweep at width 1 while the
  // producer swept at width 4, so row alignment forces a gap of
  // 3*(rows-1) + mem_latency + 1 from the load's start.
  const std::string src =
      "movsr %r0, %tid\n"
      "lds %r1, [%r0]\n"
      "addi %r2, %r1, 1\n"
      "exit\n";
  // 4 rows (64 threads): movsr->lds RAW needs a 9-clock gap but movsr only
  // covers 4 (5 stalls); the load's 16-clock sweep then exactly covers the
  // 3*(rows-1) + mem_latency + 1 = 16-clock load-to-use gap (0 stalls).
  const auto perf64 = run_counters(src, 64);
  EXPECT_EQ(perf64.stall_cycles, 5u);
  // 1 row (16 threads): movsr->lds stalls 8; the 4-clock load then covers
  // only 4 of the 7-clock load-to-use gap (3 more stalls).
  const auto perf16 = run_counters(src, 16);
  EXPECT_EQ(perf16.stall_cycles, 11u);
}

TEST(CycleModel, StoreToLoadDrains) {
  // A load after a store waits for the store's last-row writeback.
  const std::string src =
      "movsr %r0, %tid\n"
      "sts [%r0], %r0\n"
      "lds %r1, [%r0]\n"
      "exit\n";
  const auto perf = run_counters(src, 16);
  // fill 6 + movsr 1 (ends at 7); sts starts at 7+8+1=16 (RAW on r0)
  // for 16 clocks (ends 32); lds must start at 16 + 0*16 + 6 + 1 = 23 --
  // already past -- so no extra stall beyond the sts RAW one.
  EXPECT_EQ(perf.stall_cycles, 8u);
  EXPECT_EQ(perf.cycles, 6u + 1u + 8u + 16u + 4u + 1u);
}

TEST(CycleModel, TakenBranchPaysDecodeDepth) {
  const std::string src =
      "bra skip\n"
      "movi %r1, 1\n"
      "skip: exit\n";
  const auto perf = run_counters(src, 16);
  // fill 6 + bra 1 + flush 6 + exit 1.
  EXPECT_EQ(perf.cycles, 14u);
  EXPECT_EQ(perf.flush_cycles, 6u);
}

TEST(CycleModel, NotTakenBranchIsFree) {
  const std::string src =
      "movsr %r0, %tid\n"
      "movi %r1, 1000\n"
      "setp.gt %p0, %r0, %r1\n"
      "brp %p0, nowhere\n"
      "nowhere: exit\n";
  const auto perf = run_counters(src, 16);
  EXPECT_EQ(perf.flush_cycles, 0u);
}

TEST(CycleModel, ZeroOverheadLoopHasNoBackEdgeCost) {
  // Body of one independent op, 8 iterations: the loop-back costs nothing.
  const std::string src =
      "loopi 8, end\n"
      "addi %r2, %r0, 1\n"
      "end: exit\n";
  const auto perf = run_counters(src, 16);
  // fill 6 + loopi 1 + 8 iterations x 1 + exit 1.
  EXPECT_EQ(perf.cycles, 6u + 1u + 8u + 1u);
  EXPECT_EQ(perf.flush_cycles, 0u);
  EXPECT_EQ(perf.instructions, 10u);
}

TEST(CycleModel, EquivalentBranchLoopPaysFlushes) {
  // The same 8-iteration loop via counter + brp: every back edge flushes.
  const std::string src =
      "movi %r1, 8\n"
      "movi %r3, 0\n"
      "again:\n"
      "addi %r2, %r0, 1\n"
      "subi %r1, %r1, 1\n"
      "setp.ne %p0, %r1, %r3\n"
      "brp %p0, again\n"
      "exit\n";
  const auto perf = run_counters(src, 16);
  EXPECT_EQ(perf.flush_cycles, 7u * 6u);  // 7 taken back edges
  // The zero-overhead version is dramatically cheaper.
  const auto zol = run_counters(
      "loopi 8, end\naddi %r2, %r0, 1\nend: exit\n", 16);
  EXPECT_LT(zol.cycles, perf.cycles / 4);
}

TEST(CycleModel, GuardedStoreStillPaysFullWidth) {
  // Guards mask writes but lockstep issue still sweeps all rows: the STO
  // cost does not shrink unless the thread count itself is rescaled
  // (that is exactly why dynamic thread scaling exists, Section 2).
  const std::string src =
      "movsr %r0, %tid\n"
      "movi %r1, 1\n"
      "setp.lt %p0, %r0, %r1\n"
      "@p0 sts [%r0], %r0\n"
      "exit\n";
  const auto perf = run_counters(src, 512);
  EXPECT_EQ(perf.shm_writes, 1u);     // only thread 0 wrote
  EXPECT_EQ(perf.issue_cycles,
            32u + 32u + 32u + 512u + 1u);  // full-width store sweep
}

TEST(CycleModel, FillCyclesEqualDecodeDepth) {
  auto cfg = cfg512();
  cfg.decode_depth = 9;
  Gpgpu gpu(cfg);
  gpu.load_program(assembler::assemble("exit\n"));
  const auto res = gpu.run();
  EXPECT_EQ(res.perf.fill_cycles, 9u);
  EXPECT_EQ(res.perf.cycles, 10u);
}

TEST(CycleModel, OpsPerCycleApproachesSpWidth) {
  // Long independent op streams on full blocks: ~16 thread-ops/clock.
  std::string src;
  for (int i = 0; i < 50; ++i) {
    src += "addi %r" + std::to_string(1 + (i % 8)) + ", %r0, " +
           std::to_string(i) + "\n";
  }
  src += "exit\n";
  const auto perf = run_counters(src, 512);
  EXPECT_GT(perf.ops_per_cycle(), 15.0);
  EXPECT_LE(perf.ops_per_cycle(), 16.0);
}

}  // namespace
}  // namespace simt::core
