// Differential tests for the parallel staging pipeline: launches staged on
// the per-core dispatch workers (DeviceDescriptor::stage_workers, the
// default) must be bit-identical to the serial reference path
// (stage_workers = 0) -- same final master image, same per-core private
// images, same staged/merged/skipped word accounting, and same modeled
// perf counters -- across randomized host dirty ranges, overlapping
// footprints, multi-round grids, and the declared-footprint prefetch path.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/kernels.hpp"
#include "runtime/args.hpp"
#include "runtime/buffer.hpp"
#include "runtime/device.hpp"
#include "runtime/module.hpp"

namespace simt::runtime {
namespace {

constexpr unsigned kCores = 4;
constexpr unsigned kThreadsPerCore = 32;
constexpr unsigned kMemWords = 2048;

core::CoreConfig small_cfg() {
  core::CoreConfig c;
  c.max_threads = kThreadsPerCore;
  c.shared_mem_words = kMemWords;
  c.predicates_enabled = true;
  return c;
}

DeviceDescriptor multicore_desc(unsigned stage_workers) {
  auto desc = DeviceDescriptor::multi_core(kCores, small_cfg());
  desc.stage_workers = stage_workers;
  return desc;
}

/// Snapshot every core's private memory image (not just the master): the
/// shard maps must leave the same bytes resident regardless of which
/// thread performed the copies.
std::vector<std::vector<std::uint32_t>> core_images(Device& dev) {
  auto* backend = dev.backend_as<MultiCoreBackend>();
  std::vector<std::vector<std::uint32_t>> images;
  for (unsigned c = 0; c < backend->system().num_cores(); ++c) {
    std::vector<std::uint32_t> img(kMemWords);
    backend->system().core(c).read_shared_span(
        0, std::span<std::uint32_t>(img));
    images.push_back(std::move(img));
  }
  return images;
}

void expect_stats_eq(const LaunchStats& a, const LaunchStats& b,
                     const std::string& what) {
  EXPECT_EQ(a.exited, b.exited) << what;
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.perf.cycles, b.perf.cycles) << what;
  EXPECT_EQ(a.perf.thread_ops, b.perf.thread_ops) << what;
  EXPECT_EQ(a.staged_words, b.staged_words) << what;
  EXPECT_EQ(a.merged_words, b.merged_words) << what;
  EXPECT_EQ(a.staged_words_skipped, b.staged_words_skipped) << what;
  EXPECT_EQ(a.serial_cycles, b.serial_cycles) << what;
  EXPECT_EQ(a.overlap_cycles, b.overlap_cycles) << what;
  ASSERT_EQ(a.per_core.size(), b.per_core.size()) << what;
  for (std::size_t c = 0; c < a.per_core.size(); ++c) {
    EXPECT_EQ(a.per_core[c].staged_words, b.per_core[c].staged_words)
        << what << " core " << c;
    EXPECT_EQ(a.per_core[c].merged_words, b.per_core[c].merged_words)
        << what << " core " << c;
    EXPECT_EQ(a.per_core[c].exec_cycles, b.per_core[c].exec_cycles)
        << what << " core " << c;
    EXPECT_EQ(a.per_core[c].rounds, b.per_core[c].rounds)
        << what << " core " << c;
  }
}

/// One randomized scenario, replayed on a serial-staging device and a
/// parallel-staging device in lockstep: alternating host dirty writes to
/// random (often overlapping) ranges and multi-round launches of a kernel
/// whose footprint spans in/out windows shared by every core.
void run_scenario(unsigned stage_workers_b, std::uint64_t seed,
                  bool declared_abi, const std::string& what) {
  Device serial(multicore_desc(0));
  Device parallel(multicore_desc(stage_workers_b));
  Device* devs[] = {&serial, &parallel};

  const unsigned n = 3 * kCores * kThreadsPerCore;  // 3 rounds per launch
  std::vector<Buffer<std::uint32_t>> in_bufs, out_bufs;
  std::vector<Module*> mods;
  for (Device* dev : devs) {
    auto in = dev->alloc<std::uint32_t>(n);
    auto out = dev->alloc<std::uint32_t>(n);
    Module& mod =
        declared_abi
            ? dev->load_module(kernels::vecadd_abi())
            : dev->load_module(
                  "movsr %r0, %tid\n"
                  "lds %r1, [%r0 + " + std::to_string(in.word_base()) + "]\n"
                  "muli %r2, %r1, 3\n"
                  "addi %r2, %r2, 7\n"
                  "sts [%r0 + " + std::to_string(out.word_base()) + "], %r2\n"
                  "exit\n");
    in_bufs.push_back(std::move(in));
    out_bufs.push_back(std::move(out));
    mods.push_back(&mod);
  }

  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> init(n);
  for (auto& v : init) {
    v = rng.next_u32() % 10000;
  }
  for (int d = 0; d < 2; ++d) {
    in_bufs[d].write(init);
    if (declared_abi) {
      out_bufs[d].write(init);  // vecadd reuses out as the second addend
    }
  }

  for (unsigned round = 0; round < 6; ++round) {
    // Dirty a few random host ranges -- sometimes overlapping each other
    // and the footprint slices, sometimes outside the kernel's window.
    const unsigned dirties = 1 + static_cast<unsigned>(rng.next_below(4));
    for (unsigned k = 0; k < dirties; ++k) {
      const auto base = static_cast<std::uint32_t>(
          rng.next_below(kMemWords - 64));
      const auto len = 1 + static_cast<unsigned>(rng.next_below(64));
      std::vector<std::uint32_t> chunk(len);
      for (auto& v : chunk) {
        v = rng.next_u32() % 10000;
      }
      for (Device* dev : devs) {
        dev->write_words(base, std::span<const std::uint32_t>(chunk));
      }
    }

    // Vary the grid so rounds split unevenly across cores.
    const unsigned threads =
        1 + static_cast<unsigned>(rng.next_below(n));
    std::vector<LaunchStats> stats;
    for (int d = 0; d < 2; ++d) {
      if (declared_abi) {
        stats.push_back(devs[d]->launch_sync(
            mods[d]->kernel("vecadd"), threads,
            KernelArgs().arg(in_bufs[d]).arg(out_bufs[d]).arg(out_bufs[d])));
      } else {
        stats.push_back(devs[d]->launch_sync(mods[d]->kernel(), threads));
      }
    }
    expect_stats_eq(stats[0], stats[1],
                    what + " round " + std::to_string(round));

    // Both masters and every per-core private image must match.
    std::vector<std::uint32_t> ma(kMemWords), mb(kMemWords);
    serial.read_words(0, std::span<std::uint32_t>(ma));
    parallel.read_words(0, std::span<std::uint32_t>(mb));
    ASSERT_EQ(ma, mb) << what << " master mismatch, round " << round;
    const auto ia = core_images(serial);
    const auto ib = core_images(parallel);
    for (unsigned c = 0; c < kCores; ++c) {
      ASSERT_EQ(ia[c], ib[c])
          << what << " core " << c << " image mismatch, round " << round;
    }
  }
}

TEST(ParallelStaging, RandomizedDifferentialMatchesSerial) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    run_scenario(DeviceDescriptor::kAllStageWorkers, seed,
                 /*declared_abi=*/false,
                 "conservative seed " + std::to_string(seed));
  }
}

TEST(ParallelStaging, DeclaredFootprintPrefetchMatchesSerial) {
  // The declared-footprint path additionally prefetches the next round's
  // read set behind the current run; results must stay bit-identical.
  for (const std::uint64_t seed : {7ull, 8ull, 9ull}) {
    run_scenario(DeviceDescriptor::kAllStageWorkers, seed,
                 /*declared_abi=*/true,
                 "declared seed " + std::to_string(seed));
  }
}

TEST(ParallelStaging, PartialWorkerCountsAgreeToo) {
  // stage_workers between 0 and num_cores mixes worker-staged and
  // inline-staged cores in one launch.
  for (const unsigned workers : {1u, 2u, 3u}) {
    run_scenario(workers, 0x5eedull + workers, /*declared_abi=*/true,
                 "workers=" + std::to_string(workers));
  }
}

TEST(ParallelStaging, MeasuredWallSplitsArePopulated) {
  Device dev(multicore_desc(DeviceDescriptor::kAllStageWorkers));
  auto in = dev.alloc<std::uint32_t>(256);
  auto out = dev.alloc<std::uint32_t>(256);
  Module& mod = dev.load_module(
      "movsr %r0, %tid\n"
      "lds %r1, [%r0 + " + std::to_string(in.word_base()) + "]\n"
      "addi %r2, %r1, 1\n"
      "sts [%r0 + " + std::to_string(out.word_base()) + "], %r2\n"
      "exit\n");
  std::vector<std::uint32_t> host(256, 5);
  in.write(host);

  const auto stats = dev.launch_sync(mod.kernel(), 256);
  EXPECT_GT(stats.host_wall_us, 0.0);
  EXPECT_GT(stats.host_exec_us, 0.0);
  EXPECT_GT(stats.host_stage_us, 0.0);  // host wrote 256 words pre-launch
  EXPECT_GE(stats.host_merge_us, 0.0);
  double per_core_exec = 0.0;
  double per_core_stage = 0.0;
  for (const auto& c : stats.per_core) {
    EXPECT_GE(c.host_exec_us, 0.0);
    per_core_exec += c.host_exec_us;
    per_core_stage += c.host_stage_us;
  }
  EXPECT_DOUBLE_EQ(per_core_exec, stats.host_exec_us);
  EXPECT_DOUBLE_EQ(per_core_stage, stats.host_stage_us);
  for (unsigned i = 0; i < 256; ++i) {
    ASSERT_EQ(out.at(i), 6u) << i;
  }
}

TEST(ParallelStaging, StageWorkersClampAndFaultsStillSurface) {
  // An absurd worker count clamps to num_cores instead of failing.
  Device dev(multicore_desc(1000));
  Module& ok = dev.load_module("movi %r1, 1\nexit\n");
  EXPECT_TRUE(dev.launch_sync(ok.kernel(), 4 * kThreadsPerCore).exited);

  // A faulting kernel still surfaces its error with worker staging armed,
  // and the device stays usable afterwards.
  Module& bad = dev.load_module(
      "movi %r0, 9999\n"
      "sts [%r0], %r0\n"
      "exit\n");
  EXPECT_THROW(dev.launch_sync(bad.kernel(), 16), Error);
  EXPECT_TRUE(dev.launch_sync(ok.kernel(), 16).exited);
}

}  // namespace
}  // namespace simt::runtime
