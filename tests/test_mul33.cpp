// Tests for the DSP-composed 33x33 multiplier (Section 4.1, Fig. 4).
#include "hw/mul33.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"

namespace simt::hw {
namespace {

TEST(Mul33, OperandSplitRoutesSixteenBitHalves) {
  Mul33 mul;
  const auto t = mul.multiply_traced(0xABCD1234u, 0x5678EF01u,
                                     /*is_signed=*/false);
  EXPECT_EQ(t.al, 0x1234);
  EXPECT_EQ(t.bl, 0xEF01);
  // Unsigned mode zeroes the upper port bits: high halves are plain.
  EXPECT_EQ(t.ah, 0xABCD);
  EXPECT_EQ(t.bh, 0x5678);
}

TEST(Mul33, SignedModeSignExtendsHighHalves) {
  Mul33 mul;
  const auto t = mul.multiply_traced(0xFFFF0000u, 0x80000000u,
                                     /*is_signed=*/true);
  EXPECT_EQ(t.ah, -1);       // 0xFFFF sign-extended
  EXPECT_EQ(t.bh, -32768);   // 0x8000 sign-extended
  EXPECT_EQ(t.al, 0);
  EXPECT_EQ(t.bl, 0);
}

TEST(Mul33, VectorDecomposition) {
  // Verify the A/B/C vector structure against the partial products.
  Mul33 mul;
  const std::uint32_t a = 0x00030002u;  // ah=3, al=2
  const std::uint32_t b = 0x00050007u;  // bh=5, bl=7
  const auto t = mul.multiply_traced(a, b, /*is_signed=*/false);
  EXPECT_EQ(t.vec_a, 3 * 5);           // AH*BH
  EXPECT_EQ(t.vec_c, 2 * 7);           // AL*BL
  EXPECT_EQ(t.vec_b, 3 * 7 + 2 * 5);   // AH*BL + AL*BH
  EXPECT_EQ(t.product,
            static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b));
}

TEST(Mul33, RecombinationVectors) {
  // V1 = {A[33:0], C[31:0]}, V2 = sext(B) << 16 (Section 4.1).
  Mul33 mul;
  const auto t = mul.multiply_traced(0xFFFFFFFFu, 0xFFFFFFFFu,
                                     /*is_signed=*/true);
  // (-1) * (-1): AH=BH=-1, AL=BL=0xFFFF.
  EXPECT_EQ(t.vec_a, 1);
  EXPECT_EQ(t.vec_c, 0xFFFFLL * 0xFFFF);
  EXPECT_EQ(t.vec_b, -1LL * 0xFFFF * 2);
  EXPECT_EQ(t.product, 1u);  // (-1)*(-1) = 1
}

TEST(Mul33, MulLoCorners) {
  Mul33 mul;
  EXPECT_EQ(mul.mul_lo(0, 0), 0u);
  EXPECT_EQ(mul.mul_lo(1, 1), 1u);
  EXPECT_EQ(mul.mul_lo(0xFFFFFFFFu, 0xFFFFFFFFu), 1u);
  EXPECT_EQ(mul.mul_lo(0x80000000u, 2), 0u);
  EXPECT_EQ(mul.mul_lo(0x10000u, 0x10000u), 0u);
  EXPECT_EQ(mul.mul_lo(0xFFFFu, 0xFFFFu), 0xFFFE0001u);
}

TEST(Mul33, MulHiSignedCorners) {
  Mul33 mul;
  const auto INT_MIN32 = 0x80000000u;
  // INT_MIN * INT_MIN = 2^62 -> high word 0x40000000.
  EXPECT_EQ(mul.mul_hi_signed(INT_MIN32, INT_MIN32), 0x40000000u);
  // -1 * -1 = 1 -> high word 0.
  EXPECT_EQ(mul.mul_hi_signed(0xFFFFFFFFu, 0xFFFFFFFFu), 0u);
  // -1 * 1 = -1 -> high word all ones.
  EXPECT_EQ(mul.mul_hi_signed(0xFFFFFFFFu, 1), 0xFFFFFFFFu);
  EXPECT_EQ(mul.mul_hi_signed(0x7FFFFFFFu, 0x7FFFFFFFu), 0x3FFFFFFFu);
}

TEST(Mul33, MulHiUnsignedCorners) {
  Mul33 mul;
  EXPECT_EQ(mul.mul_hi_unsigned(0xFFFFFFFFu, 0xFFFFFFFFu), 0xFFFFFFFEu);
  EXPECT_EQ(mul.mul_hi_unsigned(0x80000000u, 2), 1u);
  EXPECT_EQ(mul.mul_hi_unsigned(0x10000u, 0x10000u), 1u);
  EXPECT_EQ(mul.mul_hi_unsigned(1, 1), 0u);
}

TEST(Mul33, LowHalfIsSignAgnostic) {
  // The ISA writes back either half; the low 32 bits must not depend on
  // the signedness mode (address generation uses the low half).
  Mul33 mul;
  Xoshiro256 rng(99);
  for (int i = 0; i < 2000; ++i) {
    const auto a = rng.next_u32();
    const auto b = rng.next_u32();
    EXPECT_EQ(static_cast<std::uint32_t>(mul.multiply(a, b, true)),
              static_cast<std::uint32_t>(mul.multiply(a, b, false)));
  }
}

class Mul33Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Mul33Property, SignedMatchesInt64) {
  Mul33 mul;
  Xoshiro256 rng(GetParam());
  for (int i = 0; i < 4000; ++i) {
    const auto a = rng.next_u32();
    const auto b = rng.next_u32();
    const std::int64_t golden = static_cast<std::int64_t>(
                                    static_cast<std::int32_t>(a)) *
                                static_cast<std::int32_t>(b);
    EXPECT_EQ(mul.multiply(a, b, /*is_signed=*/true),
              static_cast<std::uint64_t>(golden))
        << std::hex << a << " * " << b;
  }
}

TEST_P(Mul33Property, UnsignedMatchesUint64) {
  Mul33 mul;
  Xoshiro256 rng(GetParam() ^ 0xdeadULL);
  for (int i = 0; i < 4000; ++i) {
    const auto a = rng.next_u32();
    const auto b = rng.next_u32();
    const std::uint64_t golden =
        static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b);
    EXPECT_EQ(mul.multiply(a, b, /*is_signed=*/false), golden)
        << std::hex << a << " * " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Mul33Property,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

TEST(Mul33, ExhaustiveSmallOperandGrid) {
  // Exhaustive over a grid of structurally interesting values: near the
  // half boundaries where the decomposition carries interact.
  Mul33 mul;
  const std::uint32_t interesting[] = {
      0u,          1u,          2u,          0x7fffu,     0x8000u,
      0x8001u,     0xffffu,     0x10000u,    0x10001u,    0x7fffffffu,
      0x80000000u, 0x80000001u, 0xfffeffffu, 0xffff0000u, 0xffffffffu};
  for (const auto a : interesting) {
    for (const auto b : interesting) {
      const std::int64_t sg = static_cast<std::int64_t>(
                                  static_cast<std::int32_t>(a)) *
                              static_cast<std::int32_t>(b);
      const std::uint64_t ug =
          static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b);
      EXPECT_EQ(mul.multiply(a, b, true), static_cast<std::uint64_t>(sg));
      EXPECT_EQ(mul.multiply(a, b, false), ug);
    }
  }
}

TEST(Mul33, PipelineDepthIsDspPlusAdder) {
  // The soft-logic ALU is depth-matched to this figure (Section 4).
  EXPECT_EQ(Mul33::kPipelineDepth, kDspPipelineStages + 2);
}

}  // namespace
}  // namespace simt::hw
