// Tests for the placer, STA and fitter driver: placement legality, seed
// determinism, constraint containment, timing caps, and stamping structure.
// (Calibration of absolute MHz values lives in the benches; these tests pin
// the mechanisms.)
#include "fit/fitter.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.hpp"
#include "fit/floorplan.hpp"

namespace simt::fit {
namespace {

core::CoreConfig small_core() {
  // A 4-SP core keeps the fitter tests fast while exercising every
  // mechanism; the full flagship runs in the benches.
  core::CoreConfig cfg;
  cfg.num_sps = 4;
  cfg.max_threads = 64;
  cfg.regs_per_thread = 16;
  cfg.shared_mem_words = 1024;
  cfg.predicates_enabled = false;
  return cfg;
}

CompileOptions fast_options() {
  CompileOptions opt;
  opt.moves_per_atom = 30;  // keep tests quick
  return opt;
}

TEST(Placer, PlacementIsLegal) {
  const auto dev = fabric::Device::agfd019();
  const auto nl = fabric::build_netlist(small_core(), {});
  const Placer placer(dev, nl);
  PlaceOptions popt;
  popt.moves_per_atom = 30;
  const Placement pl = placer.place(popt);

  // No two atoms share a slot; every atom sits on a matching tile type.
  std::set<std::tuple<unsigned, unsigned, unsigned>> used;
  for (std::size_t i = 0; i < nl.atoms().size(); ++i) {
    const auto& s = pl.site(static_cast<std::int32_t>(i));
    ASSERT_TRUE(used.insert({s.x, s.y, s.slot}).second)
        << "overlap at " << s.x << "," << s.y << " slot " << int{s.slot};
    const auto tile = dev.tile(s.x, s.y);
    switch (nl.atoms()[i].kind) {
      case fabric::AtomKind::Alm:
      case fabric::AtomKind::AlmMem:
        EXPECT_EQ(tile, fabric::TileType::Lab);
        EXPECT_LT(s.slot, fabric::kAlmsPerLab);
        break;
      case fabric::AtomKind::M20k:
        EXPECT_EQ(tile, fabric::TileType::M20k);
        EXPECT_EQ(s.slot, 0u);
        break;
      case fabric::AtomKind::Dsp:
        EXPECT_EQ(tile, fabric::TileType::Dsp);
        EXPECT_EQ(s.slot, 0u);
        break;
    }
  }
}

TEST(Placer, SameSeedSameResult) {
  const auto dev = fabric::Device::agfd019();
  const auto nl = fabric::build_netlist(small_core(), {});
  const Placer placer(dev, nl);
  PlaceOptions popt;
  popt.seed = 7;
  popt.moves_per_atom = 25;
  const Placement a = placer.place(popt);
  const Placement b = placer.place(popt);
  for (std::size_t i = 0; i < nl.atoms().size(); ++i) {
    const auto& sa = a.site(static_cast<std::int32_t>(i));
    const auto& sb = b.site(static_cast<std::int32_t>(i));
    EXPECT_EQ(sa.x, sb.x);
    EXPECT_EQ(sa.y, sb.y);
    EXPECT_EQ(sa.slot, sb.slot);
  }
}

TEST(Placer, DifferentSeedsDiffer) {
  const auto dev = fabric::Device::agfd019();
  const auto nl = fabric::build_netlist(small_core(), {});
  const Placer placer(dev, nl);
  PlaceOptions p1, p2;
  p1.seed = 1;
  p2.seed = 2;
  p1.moves_per_atom = p2.moves_per_atom = 25;
  const Placement a = placer.place(p1);
  const Placement b = placer.place(p2);
  unsigned diffs = 0;
  for (std::size_t i = 0; i < nl.atoms().size(); ++i) {
    const auto& sa = a.site(static_cast<std::int32_t>(i));
    const auto& sb = b.site(static_cast<std::int32_t>(i));
    if (sa.x != sb.x || sa.y != sb.y || sa.slot != sb.slot) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, nl.atoms().size() / 10);
}

TEST(Placer, RegionConstraintIsRespected) {
  const auto dev = fabric::Device::agfd019();
  const auto nl = fabric::build_netlist(small_core(), {});
  const Placer placer(dev, nl);
  PlaceOptions popt;
  popt.moves_per_atom = 25;
  popt.regions = {Region{0, 0, 35, 15}};
  popt.atom_region.assign(nl.atoms().size(), 0);
  const Placement pl = placer.place(popt);
  for (std::size_t i = 0; i < nl.atoms().size(); ++i) {
    const auto& s = pl.site(static_cast<std::int32_t>(i));
    EXPECT_TRUE(popt.regions[0].contains(s.x, s.y))
        << s.x << "," << s.y;
  }
}

TEST(Placer, ThrowsWhenRegionTooSmall) {
  const auto dev = fabric::Device::agfd019();
  const auto nl = fabric::build_netlist(small_core(), {});
  const Placer placer(dev, nl);
  PlaceOptions popt;
  popt.regions = {Region{0, 0, 3, 3}};  // hopelessly small
  popt.atom_region.assign(nl.atoms().size(), 0);
  EXPECT_THROW(placer.place(popt), Error);
}

TEST(Sta, RestrictedFmaxIsCappedByDspInteger) {
  const auto dev = fabric::Device::agfd019();
  const auto nl = fabric::build_netlist(small_core(), {});
  const Fitter fitter(dev);
  const auto res = fitter.compile(small_core(), fast_options());
  EXPECT_LE(res.timing.fmax_restricted_mhz, 958.0f);
  EXPECT_GE(res.timing.fmax_soft_mhz, res.timing.fmax_restricted_mhz);
}

TEST(Sta, FpDatapathCapsAt771) {
  // The eGPU fp32 baseline (Section 2.1).
  const auto dev = fabric::Device::agfd019();
  const Fitter fitter(dev);
  auto opt = fast_options();
  opt.fp_datapath = true;
  const auto res = fitter.compile(small_core(), opt);
  EXPECT_LE(res.timing.fmax_restricted_mhz, 771.0f);
}

TEST(Sta, AutoSrrCapsAt850) {
  const auto dev = fabric::Device::agfd019();
  const Fitter fitter(dev);
  auto opt = fast_options();
  opt.netlist.auto_shift_register_replacement = true;
  const auto res = fitter.compile(small_core(), opt);
  EXPECT_LE(res.timing.fmax_restricted_mhz, 850.0f);
}

TEST(Sta, ReportsCriticalArcAttribution) {
  const auto dev = fabric::Device::agfd019();
  const Fitter fitter(dev);
  const auto res = fitter.compile(small_core(), fast_options());
  ASSERT_FALSE(res.timing.worst_arcs.empty());
  EXPECT_GT(res.timing.worst_arcs.front().delay_ps, 0.0f);
  // worst_arcs is sorted worst-first.
  for (std::size_t i = 1; i < res.timing.worst_arcs.size(); ++i) {
    EXPECT_GE(res.timing.worst_arcs[i - 1].delay_ps,
              res.timing.worst_arcs[i].delay_ps);
  }
  EXPECT_FALSE(res.timing.summary().empty());
}

TEST(Fitter, BoxForSatisfiesCapacitiesAt32Rows) {
  const auto dev = fabric::Device::agfd019();
  const auto nl =
      fabric::build_netlist(core::CoreConfig::table1_flagship(), {});
  const Fitter fitter(dev);
  const Region box = fitter.box_for(nl, 0.93, 0, 0);
  // Forced into a 32-row height by the DSP column (Section 5).
  EXPECT_EQ(box.height(), 32u);
  // Capacity check: count resources inside.
  unsigned alms = 0, m20k = 0, dsp = 0;
  for (unsigned x = box.x0; x <= box.x1; ++x) {
    for (unsigned y = box.y0; y <= box.y1; ++y) {
      switch (dev.tile(x, y)) {
        case fabric::TileType::Lab:
          alms += fabric::kAlmsPerLab;
          break;
        case fabric::TileType::M20k:
          ++m20k;
          break;
        case fabric::TileType::Dsp:
          ++dsp;
          break;
      }
    }
  }
  EXPECT_GE(alms, nl.count(fabric::AtomKind::Alm));
  EXPECT_GE(m20k, nl.count(fabric::AtomKind::M20k));
  EXPECT_GE(dsp, nl.count(fabric::AtomKind::Dsp));
}

TEST(Fitter, SweepReturnsBestOfSeeds) {
  const auto dev = fabric::Device::agfd019();
  const Fitter fitter(dev);
  const auto sweep = fitter.sweep(small_core(), fast_options(), 3);
  ASSERT_EQ(sweep.compiles.size(), 3u);
  for (const auto& c : sweep.compiles) {
    EXPECT_LE(c.timing.fmax_restricted_mhz,
              sweep.best().timing.fmax_restricted_mhz + 1e-3f);
  }
  // Seeds are distinct.
  EXPECT_EQ(sweep.compiles[0].seed + 1, sweep.compiles[1].seed);
}

TEST(Fitter, StampsOccupyDisjointSectorSeparatedBoxes) {
  const auto dev = fabric::Device::agfd019();
  const Fitter fitter(dev);
  auto opt = fast_options();
  opt.box_utilization = 0.93;
  const auto res = fitter.compile_stamps(small_core(), opt, 3);
  ASSERT_EQ(res.per_stamp_mhz.size(), 3u);
  for (const float mhz : res.per_stamp_mhz) {
    EXPECT_GT(mhz, 0.0f);
    EXPECT_GE(mhz, res.fmax_restricted_mhz);
  }
}

TEST(Fitter, CompileRecordsRegionWhenConstrained) {
  const auto dev = fabric::Device::agfd019();
  const Fitter fitter(dev);
  auto opt = fast_options();
  opt.box_utilization = 0.9;
  const auto res = fitter.compile(small_core(), opt);
  ASSERT_TRUE(res.region.has_value());
  // All atoms inside the recorded box.
  for (std::size_t i = 0; i < res.netlist.atoms().size(); ++i) {
    const auto& s = res.placement.site(static_cast<std::int32_t>(i));
    EXPECT_TRUE(res.region->contains(s.x, s.y));
  }
}

TEST(Floorplan, RenderShowsModulesAndSpine) {
  const auto dev = fabric::Device::agfd019();
  const Fitter fitter(dev);
  const auto res = fitter.compile(small_core(), fast_options());
  const std::string plan =
      render_floorplan(dev, res.netlist, res.placement);
  EXPECT_FALSE(plan.empty());
  // Shared memory blocks and at least one SP must be visible.
  EXPECT_NE(plan.find('S'), std::string::npos);
  EXPECT_NE(plan.find('0'), std::string::npos);
  EXPECT_NE(plan.find('D'), std::string::npos);
}

TEST(DelayModel, MonotonicInDistanceAndCongestion) {
  const auto dev = fabric::Device::agfd019();
  DelayModel model;
  fabric::TimingArc arc{0, 1, 300.0f, 0.0f, false};
  const float near = model.arc_delay_ps(arc, 0, 0, 1, 0, dev);
  const float far = model.arc_delay_ps(arc, 0, 0, 30, 0, dev);
  EXPECT_LT(near, far);
  const float congested = model.arc_delay_ps(arc, 0, 0, 30, 0, dev, 1.3f);
  EXPECT_LT(far, congested);
}

TEST(DelayModel, RetimableArcsAbsorbRouting) {
  const auto dev = fabric::Device::agfd019();
  DelayModel model;
  fabric::TimingArc rigid{0, 1, 300.0f, 0.0f, false};
  fabric::TimingArc retime{0, 1, 300.0f, 0.0f, true};
  EXPECT_GT(model.arc_delay_ps(rigid, 0, 0, 30, 0, dev),
            model.arc_delay_ps(retime, 0, 0, 30, 0, dev));
}

TEST(DelayModel, MinSpanFloorsShortRoutes) {
  const auto dev = fabric::Device::agfd019();
  DelayModel model;
  fabric::TimingArc spanned{0, 1, 300.0f, 4.0f, false};
  fabric::TimingArc plain{0, 1, 300.0f, 0.0f, false};
  // Even when placed adjacently, the spanned arc pays 4 tiles of routing.
  EXPECT_GT(model.arc_delay_ps(spanned, 0, 0, 0, 0, dev),
            model.arc_delay_ps(plain, 0, 0, 0, 0, dev));
  // Beyond the span the two agree.
  EXPECT_FLOAT_EQ(model.arc_delay_ps(spanned, 0, 0, 10, 0, dev),
                  model.arc_delay_ps(plain, 0, 0, 10, 0, dev));
}

TEST(DelayModel, CongestionKneeBehaviour) {
  DelayModel model;
  EXPECT_FLOAT_EQ(model.congestion_multiplier(0.3f), 1.0f);
  EXPECT_FLOAT_EQ(model.congestion_multiplier(0.5f), 1.0f);
  EXPECT_GT(model.congestion_multiplier(0.86f), 1.0f);
  EXPECT_GT(model.congestion_multiplier(0.93f),
            model.congestion_multiplier(0.86f));
}

TEST(Fitter, SpAlignedBindsEachSpToItsBand) {
  // Section 6 future work: every SP confined to its own rows of the box.
  const auto dev = fabric::Device::agfd019();
  const fit::Fitter fitter(dev);
  const auto cfg = core::CoreConfig::table1_flagship();
  auto opt = fast_options();
  opt.box_utilization = 0.93;
  const auto res = fitter.compile_sp_aligned(cfg, opt);
  ASSERT_TRUE(res.region.has_value());
  const unsigned rows_per_sp = res.region->height() / cfg.num_sps;
  ASSERT_GE(rows_per_sp, 1u);
  for (std::size_t i = 0; i < res.netlist.atoms().size(); ++i) {
    const auto& atom = res.netlist.atoms()[i];
    const auto& s = res.placement.site(static_cast<std::int32_t>(i));
    ASSERT_TRUE(res.region->contains(s.x, s.y));
    if (atom.sp_index >= 0) {
      const unsigned band0 =
          res.region->y0 + atom.sp_index * rows_per_sp;
      const unsigned band1 =
          atom.sp_index + 1 == static_cast<int>(cfg.num_sps)
              ? res.region->y1
              : band0 + rows_per_sp - 1;
      EXPECT_GE(s.y, band0) << "sp " << atom.sp_index;
      EXPECT_LE(s.y, band1) << "sp " << atom.sp_index;
    }
  }
  EXPECT_GT(res.timing.fmax_soft_mhz, 0.0f);
}

}  // namespace
}  // namespace simt::fit
