// Tests for the assembled integer ALU: every Operation-class opcode is
// checked against the independent golden semantics (core::ref), with both
// shifter implementations.
#include "hw/alu.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/ref_interp.hpp"

namespace simt::hw {
namespace {

using isa::Opcode;

const Opcode kRegisterOps[] = {
    Opcode::ADD,   Opcode::SUB,    Opcode::MULLO, Opcode::MULHI,
    Opcode::MULHIU, Opcode::ABS,   Opcode::NEG,   Opcode::MIN,
    Opcode::MAX,   Opcode::MINU,   Opcode::MAXU,  Opcode::AND,
    Opcode::OR,    Opcode::XOR,    Opcode::NOT,   Opcode::CNOT,
    Opcode::SHL,   Opcode::SHR,    Opcode::SAR,   Opcode::POPC,
    Opcode::CLZ,   Opcode::BREV,   Opcode::MOV};

const Opcode kCompareOps[] = {
    Opcode::SETP_EQ, Opcode::SETP_NE, Opcode::SETP_LT, Opcode::SETP_LE,
    Opcode::SETP_GT, Opcode::SETP_GE, Opcode::SETP_LTU, Opcode::SETP_GEU};

class AluVsGolden : public ::testing::TestWithParam<ShifterImpl> {};

TEST_P(AluVsGolden, AllRegisterOpsMatchReference) {
  const Alu alu(GetParam());
  Xoshiro256 rng(2024);
  for (const Opcode op : kRegisterOps) {
    isa::Instr in;
    in.op = op;
    for (int i = 0; i < 500; ++i) {
      const auto a = rng.next_u32();
      // Bias some B operands into shift range so shifts get real coverage.
      const auto b = (i % 3 == 0) ? static_cast<std::uint32_t>(
                                        rng.next_below(40))
                                  : rng.next_u32();
      EXPECT_EQ(alu.execute(op, a, b), core::ref::alu(in, a, b))
          << isa::op_info(op).mnemonic << " a=" << std::hex << a
          << " b=" << b;
    }
  }
}

TEST_P(AluVsGolden, AllComparesMatchReference) {
  const Alu alu(GetParam());
  Xoshiro256 rng(2025);
  for (const Opcode op : kCompareOps) {
    for (int i = 0; i < 500; ++i) {
      const auto a = rng.next_u32();
      const auto b = (i % 4 == 0) ? a : rng.next_u32();  // force equality hits
      EXPECT_EQ(alu.compare(op, a, b), core::ref::compare(op, a, b))
          << isa::op_info(op).mnemonic;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shifters, AluVsGolden,
                         ::testing::Values(ShifterImpl::Integrated,
                                           ShifterImpl::LogicBarrel));

TEST(Alu, ImmediateFormsShareDatapaths) {
  const Alu alu;
  // The I-forms route the immediate through operand B of the same unit.
  EXPECT_EQ(alu.execute(isa::Opcode::ADDI, 40, 2),
            alu.execute(isa::Opcode::ADD, 40, 2));
  EXPECT_EQ(alu.execute(isa::Opcode::MULI, 6, 7),
            alu.execute(isa::Opcode::MULLO, 6, 7));
  EXPECT_EQ(alu.execute(isa::Opcode::SARI, 0x80000000u, 4),
            alu.execute(isa::Opcode::SAR, 0x80000000u, 4));
}

TEST(Alu, MoviIgnoresOperandA) {
  const Alu alu;
  EXPECT_EQ(alu.execute(isa::Opcode::MOVI, 0xdeadbeefu, 42), 42u);
}

TEST(Alu, LatencyIsDepthMatched) {
  // Soft logic is depth-matched to the DSP datapath (Section 4): a single
  // uniform writeback latency for the whole ALU.
  EXPECT_EQ(Alu::kLatency, Mul33::kPipelineDepth);
}

}  // namespace
}  // namespace simt::hw
