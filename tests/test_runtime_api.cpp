// Tests for the unified device runtime: buffer allocation over the bump
// pool, module caching by source hash, stream command ordering, grid
// sharding across rounds and cores, and a differential check that the same
// kernels produce identical results on every backend.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "runtime/buffer.hpp"
#include "runtime/device.hpp"
#include "runtime/module.hpp"
#include "runtime/runtime.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/stream.hpp"

namespace simt::runtime {
namespace {

core::CoreConfig small_cfg(unsigned threads = 256,
                           unsigned mem_words = 1024) {
  core::CoreConfig c;
  c.max_threads = threads;
  c.shared_mem_words = mem_words;
  c.predicates_enabled = true;
  return c;
}

// ---- buffers ---------------------------------------------------------------

TEST(Buffer, AllocationIsSequential) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto a = dev.alloc<std::uint32_t>(100);
  auto b = dev.alloc<std::int32_t>(28);
  auto c = dev.alloc<std::uint32_t>(1);
  EXPECT_EQ(a.word_base(), 0u);
  EXPECT_EQ(b.word_base(), 100u);
  EXPECT_EQ(c.word_base(), 128u);
  EXPECT_EQ(dev.mem().used(), 129u);
  EXPECT_EQ(dev.mem().available(), 1024u - 129u);
}

TEST(Buffer, ExhaustionThrows) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  dev.alloc<std::uint32_t>(1000);
  EXPECT_THROW(dev.alloc<std::uint32_t>(25), Error);
  // A fitting allocation still succeeds, and reset reclaims everything.
  auto ok = dev.alloc<std::uint32_t>(24);
  EXPECT_EQ(ok.word_base(), 1000u);
  dev.mem_reset();
  EXPECT_EQ(dev.alloc<std::uint32_t>(1024).word_base(), 0u);
  EXPECT_THROW(dev.alloc<std::uint32_t>(1), Error);
}

TEST(Buffer, ZeroWordAllocationThrows) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  EXPECT_THROW(dev.alloc<std::uint32_t>(0), Error);
}

TEST(Buffer, RoundTripsTypedData) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto buf = dev.alloc<std::int32_t>(4);
  const std::vector<std::int32_t> data = {-5, 0, 7, -100};
  buf.write(data);
  EXPECT_EQ(buf.read(), data);
  EXPECT_EQ(buf.at(3), -100);
  std::vector<std::int32_t> partial(2);
  buf.read_into(partial);
  EXPECT_EQ(partial, (std::vector<std::int32_t>{-5, 0}));
}

TEST(Buffer, OversizeAccessThrows) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto buf = dev.alloc<std::uint32_t>(4);
  const std::vector<std::uint32_t> five(5, 1);
  EXPECT_THROW(buf.write(five), Error);
  EXPECT_THROW(Buffer<std::uint32_t>().read(), Error);
}

// ---- modules ---------------------------------------------------------------

TEST(Module, CachesBySourceHash) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  const std::string src = "movi %r1, 1\nexit\n";
  Module& first = dev.load_module(src);
  Module& second = dev.load_module(src);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(dev.module_cache_size(), 1u);
  EXPECT_EQ(dev.module_cache_misses(), 1u);
  EXPECT_EQ(dev.module_cache_hits(), 1u);
  dev.load_module("movi %r1, 2\nexit\n");
  EXPECT_EQ(dev.module_cache_size(), 2u);
  EXPECT_EQ(dev.module_cache_misses(), 2u);
}

TEST(Module, KernelEntryLabels) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  Module& mod = dev.load_module(
      "movi %r1, 1\n"
      "exit\n"
      "other:\n"
      "movi %r1, 2\n"
      "exit\n");
  EXPECT_EQ(mod.kernel().entry, 0u);
  EXPECT_EQ(mod.kernel("other").entry, 2u);
  EXPECT_THROW(mod.kernel("missing"), Error);

  // Launch at the label and observe its side effect.
  dev.launch_sync(mod.kernel("other"), 16);
  auto* backend = dev.backend_as<SimtCoreBackend>();
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->gpu().read_reg(0, 1), 2u);
}

// ---- streams ---------------------------------------------------------------

TEST(StreamQueue, CommandsRunInOrderAtSynchronize) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto in = dev.alloc<std::uint32_t>(64);
  auto out = dev.alloc<std::uint32_t>(64);
  Module& mod = dev.load_module(kernels::vecadd(
      in.word_base(), in.word_base(), out.word_base()));

  std::vector<std::uint32_t> host(64);
  std::iota(host.begin(), host.end(), 0u);
  std::vector<std::uint32_t> result(64, 0xdeadbeef);

  // Hold the scheduler so the queued-but-unexecuted state is observable
  // deterministically (commands normally start in the background at once).
  dev.scheduler().pause();
  auto& stream = dev.stream();
  stream.copy_in(in, std::span<const std::uint32_t>(host));
  Event event = stream.launch(mod.kernel(), 64);
  stream.copy_out(out, std::span<std::uint32_t>(result));

  // Nothing has executed yet: the queue is pending, the event incomplete,
  // and the caller's output storage untouched.
  EXPECT_EQ(stream.pending(), 3u);
  EXPECT_FALSE(event.complete());
  EXPECT_THROW(event.stats(), Error);
  EXPECT_EQ(result[0], 0xdeadbeefu);

  dev.scheduler().resume();
  stream.synchronize();
  EXPECT_EQ(stream.pending(), 0u);
  ASSERT_TRUE(event.complete());
  EXPECT_TRUE(event.stats().exited);
  EXPECT_GT(event.stats().perf.cycles, 0u);
  EXPECT_GT(event.wall_us(), 0.0);
  for (unsigned i = 0; i < 64; ++i) {
    EXPECT_EQ(result[i], 2 * i) << i;
  }
}

TEST(StreamQueue, SnapshotsCopyInPayload) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  auto buf = dev.alloc<std::uint32_t>(4);
  std::vector<std::uint32_t> host = {1, 2, 3, 4};
  dev.stream().copy_in(buf, std::span<const std::uint32_t>(host));
  host.assign(4, 0);  // mutate after enqueue; the snapshot must win
  dev.stream().synchronize();
  EXPECT_EQ(buf.read(), (std::vector<std::uint32_t>{1, 2, 3, 4}));
}

// ---- grid sharding ---------------------------------------------------------

TEST(Launch, SplitsOversizedGridsIntoRounds) {
  // 64-thread core covering a 256-thread grid: 4 rounds via %tid base.
  Device dev(DeviceDescriptor::simt_core(small_cfg(64, 1024)));
  auto out = dev.alloc<std::uint32_t>(256);
  Module& mod = dev.load_module(
      "movsr %r0, %tid\n"
      "muli %r1, %r0, 3\n"
      "sts [%r0 + " + std::to_string(out.word_base()) + "], %r1\n"
      "exit\n");
  const auto stats = dev.launch_sync(mod.kernel(), 256);
  EXPECT_EQ(stats.rounds, 4u);
  EXPECT_TRUE(stats.exited);
  const auto result = out.read();
  for (unsigned i = 0; i < 256; ++i) {
    EXPECT_EQ(result[i], 3 * i) << i;
  }
}

TEST(Launch, ShardsAcrossCores) {
  // 2 cores x 128 threads covering a 256-thread grid in one round.
  Device dev(DeviceDescriptor::multi_core(2, small_cfg(128, 1024)));
  EXPECT_EQ(dev.max_concurrent_threads(), 256u);
  auto out = dev.alloc<std::uint32_t>(256);
  Module& mod = dev.load_module(
      "movsr %r0, %tid\n"
      "muli %r1, %r0, 7\n"
      "sts [%r0 + " + std::to_string(out.word_base()) + "], %r1\n"
      "exit\n");
  const auto stats = dev.launch_sync(mod.kernel(), 256);
  EXPECT_EQ(stats.rounds, 1u);
  const auto result = out.read();
  for (unsigned i = 0; i < 256; ++i) {
    EXPECT_EQ(result[i], 7 * i) << i;
  }
}

TEST(Launch, NtidReportsTheLogicalGridOnEveryBackend) {
  // A kernel that stores %ntid must see the full grid size even when the
  // launch is split into rounds or sharded across cores -- and the same
  // value the scalar sweep reports.
  const auto run = [](DeviceDescriptor desc, unsigned n) {
    Device dev(desc);
    auto out = dev.alloc<std::uint32_t>(n);
    Module& mod = dev.load_module(
        "movsr %r0, %tid\n"
        "movsr %r1, %ntid\n"
        "sts [%r0 + " + std::to_string(out.word_base()) + "], %r1\n"
        "exit\n");
    dev.launch_sync(mod.kernel(), n);
    return out.read();
  };
  constexpr unsigned kN = 256;
  // 64-thread core: 4 rounds. 2x64 cores: 2 rounds of 2 shards.
  const auto split = run(DeviceDescriptor::simt_core(small_cfg(64, 1024)),
                         kN);
  const auto multi = run(DeviceDescriptor::multi_core(2, small_cfg(64, 1024)),
                         kN);
  baseline::ScalarCpuConfig scfg;
  scfg.shared_mem_words = 1024;
  const auto scalar = run(DeviceDescriptor::scalar_cpu(scfg), kN);
  for (unsigned i = 0; i < kN; ++i) {
    ASSERT_EQ(split[i], kN) << i;
    ASSERT_EQ(multi[i], kN) << i;
    ASSERT_EQ(scalar[i], kN) << i;
  }
}

TEST(Launch, SettiRestoresDynamicNtidSemantics) {
  // Once a program rescales the thread space, %ntid tracks the dynamic
  // count again (Section 2 semantics), not the grid override.
  Device dev(DeviceDescriptor::simt_core(small_cfg(64, 1024)));
  auto out = dev.alloc<std::uint32_t>(16);
  Module& mod = dev.load_module(
      "movsr %r0, %tid\n"
      "setti 16\n"
      "movsr %r1, %ntid\n"
      "sts [%r0 + " + std::to_string(out.word_base()) + "], %r1\n"
      "exit\n");
  dev.launch_sync(mod.kernel(), 64);
  EXPECT_EQ(out.at(0), 16u);
}

TEST(Launch, ZeroThreadsThrows) {
  Device dev(DeviceDescriptor::simt_core(small_cfg()));
  Module& mod = dev.load_module("exit\n");
  EXPECT_THROW(dev.launch_sync(mod.kernel(), 0), Error);
}

// ---- backend differential --------------------------------------------------

/// Run vecadd + saxpy on one device and return (c, out) host copies.
struct DifferentialResult {
  std::vector<std::uint32_t> vecadd;
  std::vector<std::int32_t> saxpy;
};

DifferentialResult run_differential(DeviceDescriptor desc, unsigned n) {
  Device dev(desc);
  auto a = dev.alloc<std::uint32_t>(n);
  auto b = dev.alloc<std::uint32_t>(n);
  auto c = dev.alloc<std::uint32_t>(n);
  auto x = dev.alloc<std::int32_t>(n);
  auto y = dev.alloc<std::int32_t>(n);
  auto out = dev.alloc<std::int32_t>(n);

  std::vector<std::uint32_t> ha(n), hb(n);
  std::vector<std::int32_t> hx(n), hy(n);
  for (unsigned i = 0; i < n; ++i) {
    ha[i] = 3 * i + 1;
    hb[i] = 1000 + i;
    hx[i] = static_cast<std::int32_t>(i) - static_cast<std::int32_t>(n / 2);
    hy[i] = 7 * static_cast<std::int32_t>(i) - 100;
  }

  DifferentialResult result;
  result.vecadd.resize(n);
  result.saxpy.resize(n);

  const std::int32_t alpha = 3 << 14;  // 0.75 in Q16
  Module& add_mod = dev.load_module(
      kernels::vecadd(a.word_base(), b.word_base(), c.word_base()));
  Module& saxpy_mod = dev.load_module(kernels::saxpy(
      alpha, 16, x.word_base(), y.word_base(), out.word_base()));

  auto& stream = dev.stream();
  stream.copy_in(a, std::span<const std::uint32_t>(ha));
  stream.copy_in(b, std::span<const std::uint32_t>(hb));
  stream.copy_in(x, std::span<const std::int32_t>(hx));
  stream.copy_in(y, std::span<const std::int32_t>(hy));
  stream.launch(add_mod.kernel(), n);
  stream.launch(saxpy_mod.kernel(), n);
  stream.copy_out(c, std::span<std::uint32_t>(result.vecadd));
  stream.copy_out(out, std::span<std::int32_t>(result.saxpy));
  stream.synchronize();
  return result;
}

TEST(BackendDifferential, VecaddAndSaxpyAgreeEverywhere) {
  constexpr unsigned kN = 192;  // not a multiple of the core sizes below

  const auto core = run_differential(
      DeviceDescriptor::simt_core(small_cfg(256, 2048)), kN);
  // 3 x 64-thread cores: one round, uneven shards (64/64/64).
  const auto multi = run_differential(
      DeviceDescriptor::multi_core(3, small_cfg(64, 2048)), kN);
  // 2 x 128-thread cores: 192 threads shard as 96/96.
  const auto multi2 = run_differential(
      DeviceDescriptor::multi_core(2, small_cfg(128, 2048)), kN);
  baseline::ScalarCpuConfig scfg;
  scfg.shared_mem_words = 2048;
  const auto scalar =
      run_differential(DeviceDescriptor::scalar_cpu(scfg), kN);

  // Golden reference.
  for (unsigned i = 0; i < kN; ++i) {
    const std::uint32_t add_golden = (3 * i + 1) + (1000 + i);
    const std::int64_t prod =
        static_cast<std::int64_t>(3 << 14) *
        (static_cast<std::int32_t>(i) - static_cast<std::int32_t>(kN / 2));
    const std::int32_t saxpy_golden =
        static_cast<std::int32_t>(prod >> 16) +
        (7 * static_cast<std::int32_t>(i) - 100);
    ASSERT_EQ(core.vecadd[i], add_golden) << i;
    ASSERT_EQ(core.saxpy[i], saxpy_golden) << i;
  }
  EXPECT_EQ(multi.vecadd, core.vecadd);
  EXPECT_EQ(multi.saxpy, core.saxpy);
  EXPECT_EQ(multi2.vecadd, core.vecadd);
  EXPECT_EQ(multi2.saxpy, core.saxpy);
  EXPECT_EQ(scalar.vecadd, core.vecadd);
  EXPECT_EQ(scalar.saxpy, core.saxpy);
}

// ---- clocks and stats ------------------------------------------------------

TEST(DeviceClocks, DefaultsFollowThePaperAndOverrideWins) {
  Device core(DeviceDescriptor::simt_core(small_cfg()));
  EXPECT_DOUBLE_EQ(core.fmax_mhz(), 950.0);

  Device multi(DeviceDescriptor::multi_core(3, small_cfg()));
  EXPECT_DOUBLE_EQ(multi.fmax_mhz(), 854.0);
  Device single(DeviceDescriptor::multi_core(1, small_cfg()));
  EXPECT_DOUBLE_EQ(single.fmax_mhz(), 927.0);

  Device scalar(DeviceDescriptor::scalar_cpu());
  EXPECT_DOUBLE_EQ(scalar.fmax_mhz(), 300.0);

  auto desc = DeviceDescriptor::simt_core(small_cfg());
  desc.fmax_mhz = 475.0;  // e.g. a fitter-realized clock
  Device derated(desc);
  EXPECT_DOUBLE_EQ(derated.fmax_mhz(), 475.0);
}

TEST(DeviceClocks, WallClockScalesWithFmax) {
  auto desc = DeviceDescriptor::simt_core(small_cfg());
  desc.fmax_mhz = 100.0;
  Device dev(desc);
  Module& mod = dev.load_module("movi %r1, 1\nexit\n");
  const auto stats = dev.launch_sync(mod.kernel(), 16);
  EXPECT_DOUBLE_EQ(stats.wall_us,
                   static_cast<double>(stats.perf.cycles) / 100.0);
}

// ---- deprecated shim -------------------------------------------------------

TEST(EgpuRuntimeShim, ProgramBeforeLoadKernelIsEmpty) {
  EgpuRuntime rt(small_cfg());
  EXPECT_TRUE(rt.program().empty());
}

TEST(EgpuRuntimeShim, StillWorksOnTopOfDevice) {
  EgpuRuntime rt(small_cfg());
  rt.load_kernel(
      "movsr %r0, %tid\n"
      "lds %r1, [%r0]\n"
      "muli %r1, %r1, 2\n"
      "sts [%r0 + 256], %r1\n"
      "exit\n");
  std::vector<std::uint32_t> input(256);
  std::iota(input.begin(), input.end(), 0u);
  rt.copy_in(0, input);
  const auto res = rt.launch(256);
  EXPECT_TRUE(res.exited);
  const auto out = rt.copy_out(256, 256);
  for (unsigned i = 0; i < 256; ++i) {
    EXPECT_EQ(out[i], 2 * i);
  }
  // The shim's module is cached in the underlying device.
  EXPECT_EQ(rt.device().module_cache_size(), 1u);
}

}  // namespace
}  // namespace simt::runtime
