// Unit tests for the bit-manipulation primitives every datapath model
// depends on.
#include "common/bits.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace simt {
namespace {

TEST(Bits, BitReverseKnownValues) {
  EXPECT_EQ(bit_reverse32(0x00000001u), 0x80000000u);
  EXPECT_EQ(bit_reverse32(0x80000000u), 0x00000001u);
  EXPECT_EQ(bit_reverse32(0xFFFFFFFFu), 0xFFFFFFFFu);
  EXPECT_EQ(bit_reverse32(0x00000000u), 0x00000000u);
  EXPECT_EQ(bit_reverse32(0x0000FFFFu), 0xFFFF0000u);
  EXPECT_EQ(bit_reverse32(0x12345678u), 0x1E6A2C48u);
}

TEST(Bits, BitReverseIsInvolution) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_u32();
    EXPECT_EQ(bit_reverse32(bit_reverse32(v)), v);
  }
}

TEST(Bits, BitReversePartialWidth) {
  // 12-bit reversal from the Fig. 5 worked example: 110001101111 ->
  // 111101100011.
  EXPECT_EQ(bit_reverse(0b110001101111u, 12), 0b111101100011u);
}

TEST(Bits, OnehotInRange) {
  for (unsigned s = 0; s < 32; ++s) {
    EXPECT_EQ(onehot(s, 32), std::uint64_t{1} << s) << "shift " << s;
  }
}

TEST(Bits, OnehotOutOfRangeIsZero) {
  // "A value greater than decimal 31 is converted to a one-hot value of all
  // zeroes" (Section 4.2).
  EXPECT_EQ(onehot(32, 32), 0u);
  EXPECT_EQ(onehot(33, 32), 0u);
  EXPECT_EQ(onehot(0xffffffffu, 32), 0u);
}

TEST(Bits, UnaryMaskThermometer) {
  EXPECT_EQ(unary_mask(0, 32), 0u);
  EXPECT_EQ(unary_mask(1, 32), 0b1u);
  EXPECT_EQ(unary_mask(5, 32), 0b11111u);
  EXPECT_EQ(unary_mask(31, 32), 0x7fffffffu);
}

TEST(Bits, UnaryMaskSaturatesOutOfRange) {
  // A fully shifted-out negative number must become -1: all ones.
  EXPECT_EQ(unary_mask(32, 32), 0xffffffffu);
  EXPECT_EQ(unary_mask(1000, 32), 0xffffffffu);
}

TEST(Bits, SextBasics) {
  EXPECT_EQ(sext(0x80, 8), -128);
  EXPECT_EQ(sext(0x7f, 8), 127);
  EXPECT_EQ(sext(0xffff, 16), -1);
  EXPECT_EQ(sext(0x8000, 16), -32768);
  EXPECT_EQ(sext(0x0000, 16), 0);
  EXPECT_EQ(sext(0xffffffffu, 32), -1);
}

TEST(Bits, ZextMasks) {
  EXPECT_EQ(zext(0xdeadbeefcafe, 16), 0xcafeu);
  EXPECT_EQ(zext(0xff, 4), 0xfu);
  EXPECT_EQ(zext(0x1234, 64), 0x1234u);
}

TEST(Bits, BitsFieldExtract) {
  EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
  EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
  EXPECT_EQ(bits(0xdeadbeef, 7, 4), 0xeu);
  EXPECT_EQ(bits(0x1, 0, 0), 0x1u);
}

TEST(Bits, Popcount) {
  EXPECT_EQ(popcount32(0), 0u);
  EXPECT_EQ(popcount32(0xffffffffu), 32u);
  EXPECT_EQ(popcount32(0x80000001u), 2u);
}

TEST(Bits, ClzPtxSemantics) {
  EXPECT_EQ(clz32(0), 32u);  // PTX: clz(0) == 32
  EXPECT_EQ(clz32(1), 31u);
  EXPECT_EQ(clz32(0x80000000u), 0u);
  EXPECT_EQ(clz32(0x00010000u), 15u);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(512u, 16u), 32u);  // the paper's 512-thread example
  EXPECT_EQ(ceil_div(1u, 16u), 1u);
  EXPECT_EQ(ceil_div(16u, 16u), 1u);
  EXPECT_EQ(ceil_div(17u, 16u), 2u);
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fits_signed(32767, 16));
  EXPECT_FALSE(fits_signed(32768, 16));
  EXPECT_TRUE(fits_signed(-32768, 16));
  EXPECT_FALSE(fits_signed(-32769, 16));
}

TEST(Bits, FitsUnsigned) {
  EXPECT_TRUE(fits_unsigned(65535, 16));
  EXPECT_FALSE(fits_unsigned(65536, 16));
  EXPECT_TRUE(fits_unsigned(0xffffffffu, 32));
}

// Property sweep: reversal distributes over unary/onehot consistently.
class BitsWidthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitsWidthSweep, OnehotMatchesShiftSemantics) {
  const unsigned width = GetParam();
  for (unsigned s = 0; s < width; ++s) {
    const std::uint64_t oh = onehot(s, width);
    EXPECT_EQ(oh, std::uint64_t{1} << s);
    // Multiplying by the one-hot value is a left shift (Section 4.2).
    const std::uint64_t v = 0x9e3779b97f4a7c15ULL & ((1ULL << width) - 1);
    EXPECT_EQ(zext(v * oh, width), zext(v << s, width));
  }
  EXPECT_EQ(onehot(width, width), 0u);
}

TEST_P(BitsWidthSweep, UnaryMaskHasAmountOnes) {
  const unsigned width = GetParam();
  for (unsigned s = 0; s <= width; ++s) {
    const auto mask = unary_mask(s, width);
    EXPECT_EQ(std::popcount(mask), static_cast<int>(std::min(s, width)));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitsWidthSweep,
                         ::testing::Values(8u, 12u, 16u, 24u, 32u, 48u));

}  // namespace
}  // namespace simt
