// Tests for the prefix carry-lookahead segmented adders (Section 4.1).
#include "hw/segmented_adder.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace simt::hw {
namespace {

unsigned __int128 mask_w(unsigned w) {
  return w >= 128 ? ~static_cast<unsigned __int128>(0)
                  : (static_cast<unsigned __int128>(1) << w) - 1;
}

TEST(SegmentedAdder, SmallKnownSums) {
  SegmentedAdder add32(32);
  EXPECT_EQ(static_cast<std::uint64_t>(add32.add(1, 2)), 3u);
  EXPECT_EQ(static_cast<std::uint64_t>(add32.add(0xffffffffu, 1)), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(add32.add(0xffff, 1)), 0x10000u);
}

TEST(SegmentedAdder, CarryRipplesAcrossAllSegments) {
  SegmentedAdder add64(64);
  // 0xffff_ffff_ffff_ffff + 1 wraps to zero through four segment carries.
  const auto t = add64.add_traced(~std::uint64_t{0}, 1);
  EXPECT_EQ(static_cast<std::uint64_t>(t.sum), 0u);
  // Every segment above the first must have received a carry.
  for (unsigned s = 1; s < add64.segment_count(); ++s) {
    EXPECT_TRUE(t.carry_in[s]) << "segment " << s;
  }
}

TEST(SegmentedAdder, GeneratePropagateDecomposition) {
  SegmentedAdder add64(64);
  // Segment 0 generates (0xffff + 1); segment 1 propagates (0xffff + 0);
  // segment 2 neither (0 + 0).
  const std::uint64_t a = 0x0000'ffff'ffffULL;
  const std::uint64_t b = 0x0000'0000'0001ULL;
  const auto t = add64.add_traced(a, b);
  EXPECT_TRUE(t.generate[0]);
  EXPECT_FALSE(t.generate[1]);
  EXPECT_TRUE(t.propagate[1]);  // a|b == 0xffff in segment 1
  EXPECT_FALSE(t.generate[2]);
  EXPECT_FALSE(t.propagate[2]);
  EXPECT_TRUE(t.carry_in[1]);
  EXPECT_TRUE(t.carry_in[2]);  // propagated through segment 1
  EXPECT_FALSE(t.carry_in[3]);
  EXPECT_EQ(static_cast<std::uint64_t>(t.sum), a + b);
}

TEST(SegmentedAdder, PropagateIsAndOfOrPairs) {
  SegmentedAdder add32(32);
  // a|b covers the whole segment but the sum does not generate: propagate
  // must be set (the paper's definition: AND of the OR of every bit pair).
  const auto t = add32.add_traced(0xaaaa, 0x5555);
  EXPECT_TRUE(t.propagate[0]);
  EXPECT_FALSE(t.generate[0]);
  // With a hole at bit 3, propagate must clear.
  const auto t2 = add32.add_traced(0xaaa2, 0x5555);
  EXPECT_FALSE(t2.propagate[0]);
}

TEST(SegmentedAdder, PassthroughRegionForwardsOperandA) {
  // The multiplier's final add passes C's low 16 bits straight through
  // (they "do not require any processing").
  SegmentedAdder add66(66, 16);
  const unsigned __int128 a = (static_cast<unsigned __int128>(0x1234) << 16) |
                              0xbeef;
  const unsigned __int128 b = static_cast<unsigned __int128>(0xffff) << 16;
  const auto t = add66.add_traced(a, b);
  EXPECT_EQ(static_cast<std::uint64_t>(t.sum) & 0xffffu, 0xbeefu);
  EXPECT_EQ(t.sum & mask_w(66), (a + b) & mask_w(66));
}

TEST(SegmentedAdder, WidthValidation) {
  EXPECT_EQ(SegmentedAdder(66).segment_count(), 5u);
  EXPECT_EQ(SegmentedAdder(64).segment_count(), 4u);
  EXPECT_EQ(SegmentedAdder(32).segment_count(), 2u);
  EXPECT_EQ(SegmentedAdder(16).segment_count(), 1u);
}

class SegmentedAdderWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(SegmentedAdderWidths, MatchesWideAdditionRandomly) {
  const unsigned width = GetParam();
  SegmentedAdder adder(width);
  Xoshiro256 rng(width * 1000003u);
  for (int i = 0; i < 5000; ++i) {
    const unsigned __int128 a =
        (static_cast<unsigned __int128>(rng.next()) << 64 | rng.next()) &
        mask_w(width);
    const unsigned __int128 b =
        (static_cast<unsigned __int128>(rng.next()) << 64 | rng.next()) &
        mask_w(width);
    EXPECT_EQ(adder.add(a, b), (a + b) & mask_w(width));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SegmentedAdderWidths,
                         ::testing::Values(16u, 32u, 48u, 64u, 66u, 80u,
                                           128u));

TEST(TwoStageAdder32, AddMatchesNative) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const auto a = rng.next_u32();
    const auto b = rng.next_u32();
    const auto r = TwoStageAdder32::run(a, b, /*sub=*/false);
    EXPECT_EQ(r.sum, a + b);
    EXPECT_EQ(r.carry_out,
              (static_cast<std::uint64_t>(a) + b) >> 32 & 1u);
  }
}

TEST(TwoStageAdder32, SubMatchesNative) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 5000; ++i) {
    const auto a = rng.next_u32();
    const auto b = rng.next_u32();
    const auto r = TwoStageAdder32::run(a, b, /*sub=*/true);
    EXPECT_EQ(r.sum, a - b);
    // Borrow clear (carry set) iff a >= b, the unsigned compare decode.
    EXPECT_EQ(r.carry_out, a >= b);
  }
}

TEST(TwoStageAdder32, SignedOverflowFlag) {
  // INT_MAX + 1 overflows; INT_MIN - 1 overflows.
  EXPECT_TRUE(TwoStageAdder32::run(0x7fffffffu, 1, false).overflow);
  EXPECT_TRUE(TwoStageAdder32::run(0x80000000u, 1, true).overflow);
  EXPECT_FALSE(TwoStageAdder32::run(5, 3, true).overflow);
  EXPECT_FALSE(TwoStageAdder32::run(5, 3, false).overflow);
}

TEST(TwoStageAdder32, RegisteredMidCarryCases) {
  // Exercise the carry hand-off between the two 16-bit halves.
  const auto r1 = TwoStageAdder32::run(0x0000ffffu, 0x00000001u, false);
  EXPECT_EQ(r1.sum, 0x00010000u);
  const auto r2 = TwoStageAdder32::run(0x00010000u, 0x00000001u, true);
  EXPECT_EQ(r2.sum, 0x0000ffffu);
}

}  // namespace
}  // namespace simt::hw
