// Tests for the DeviceCluster serving tier: admission control (reject /
// shed-oldest / block), per-tenant round-robin fairness, outstanding-work
// routing across mixed backends, plan-cached replay correctness (bit-
// identical to a single-device launch_sync), hot-unplug fail-over, and
// sticky-fault quarantine.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "runtime/buffer.hpp"
#include "runtime/device.hpp"
#include "runtime/module.hpp"

namespace simt::cluster {
namespace {

namespace rt = simt::runtime;

core::CoreConfig small_cfg(unsigned threads = 64, unsigned mem_words = 2048) {
  core::CoreConfig c;
  c.max_threads = threads;
  c.shared_mem_words = mem_words;
  c.predicates_enabled = true;
  return c;
}

/// The canonical serving plan: out[i] = 3 * in[i] + 5 over n words.
PlanSpec scale_plan(unsigned n) {
  PlanSpec spec;
  spec.name = "scale";
  spec.source = kernels::scale_abi();
  spec.kernel = "scale";
  spec.threads = n;
  spec.args = {PlanArg::input(n), PlanArg::output(n), PlanArg::immediate(3),
               PlanArg::immediate(5)};
  return spec;
}

std::vector<std::uint32_t> payload_for(unsigned n, std::uint32_t seed) {
  std::vector<std::uint32_t> p(n);
  for (unsigned i = 0; i < n; ++i) {
    p[i] = seed * 1000 + i;
  }
  return p;
}

std::vector<std::uint32_t> golden_scale(const std::vector<std::uint32_t>& in,
                                        std::uint32_t mul, std::uint32_t add) {
  std::vector<std::uint32_t> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = mul * in[i] + add;
  }
  return out;
}

// ---- construction and edge cases -------------------------------------------

TEST(Cluster, ZeroDevicesThrows) {
  std::vector<rt::DeviceDescriptor> none;
  EXPECT_THROW(DeviceCluster cluster(none), Error);
}

TEST(Cluster, UnknownPlanAndBadRequestsThrow) {
  DeviceCluster cluster({rt::DeviceDescriptor::simt_core(small_cfg())});
  cluster.register_plan(scale_plan(16));

  const auto payload = payload_for(16, 1);
  EXPECT_THROW(cluster.submit("t", "nope", payload), Error);
  // Payload size must match the plan's Input extent (frozen at capture).
  const std::vector<std::uint32_t> wrong(8, 0);
  EXPECT_THROW(cluster.submit("t", "scale", wrong), Error);
  // Scalar overrides must name a Scalar position.
  const std::vector<ScalarOverride> on_buffer = {{0, 7}};
  const std::vector<ScalarOverride> past_end = {{9, 7}};
  EXPECT_THROW(cluster.submit("t", "scale", payload, on_buffer), Error);
  EXPECT_THROW(cluster.submit("t", "scale", payload, past_end), Error);
}

TEST(Cluster, BadPlanSpecsThrow) {
  DeviceCluster cluster({rt::DeviceDescriptor::simt_core(small_cfg())});
  PlanSpec spec = scale_plan(16);
  spec.args[0] = PlanArg::immediate(0);  // no Input
  EXPECT_THROW(cluster.register_plan(spec), Error);
  spec = scale_plan(16);
  spec.threads = 0;
  EXPECT_THROW(cluster.register_plan(spec), Error);
  spec = scale_plan(16);
  spec.kernel = "nope";
  EXPECT_THROW(cluster.register_plan(spec), Error);
}

// ---- serving correctness ---------------------------------------------------

TEST(Cluster, ServesWithScalarOverrides) {
  constexpr unsigned kN = 16;
  DeviceCluster cluster({rt::DeviceDescriptor::simt_core(small_cfg())});
  cluster.register_plan(scale_plan(kN));

  const auto payload = payload_for(kN, 1);
  auto a = cluster.submit("web", "scale", payload);
  const std::vector<ScalarOverride> mul10_add0 = {{2, 10}, {3, 0}};
  auto b = cluster.submit("web", "scale", payload, mul10_add0);
  cluster.drain();

  ASSERT_EQ(a.status(), RequestStatus::Ok);
  ASSERT_EQ(b.status(), RequestStatus::Ok);
  const auto got_a = a.result();
  const auto got_b = b.result();
  const auto want_a = golden_scale(payload, 3, 5);
  const auto want_b = golden_scale(payload, 10, 0);
  EXPECT_TRUE(std::equal(got_a.begin(), got_a.end(), want_a.begin()));
  EXPECT_TRUE(std::equal(got_b.begin(), got_b.end(), want_b.begin()));
  EXPECT_EQ(a.device(), 0);
  EXPECT_GT(a.latency_us(), 0.0);

  const auto stats = cluster.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(Cluster, ThreeBackendDifferential) {
  constexpr unsigned kN = 32;
  baseline::ScalarCpuConfig scfg;
  scfg.shared_mem_words = 2048;
  DeviceCluster cluster({rt::DeviceDescriptor::simt_core(small_cfg()),
                         rt::DeviceDescriptor::multi_core(2, small_cfg()),
                         rt::DeviceDescriptor::scalar_cpu(scfg)});
  cluster.register_plan(scale_plan(kN));

  // Queue the whole burst with the dispatcher held so routing sees real
  // backlog (outstanding-work spreading is what this test exercises).
  constexpr unsigned kRequests = 24;
  const char* tenants[] = {"dsp", "web", "ml"};
  cluster.pause();
  std::vector<ClusterTicket> tickets;
  for (unsigned r = 0; r < kRequests; ++r) {
    tickets.push_back(
        cluster.submit(tenants[r % 3], "scale", payload_for(kN, r)));
  }
  cluster.resume();
  cluster.drain();

  // Golden: the same kernel on a plain single device via launch_sync.
  rt::Device ref(rt::DeviceDescriptor::simt_core(small_cfg()));
  auto rin = ref.alloc<std::uint32_t>(kN);
  auto rout = ref.alloc<std::uint32_t>(kN);
  const auto scale = ref.load_module(kernels::scale_abi()).kernel("scale");

  // Every backend's answer is bit-identical to the single-device launch.
  std::vector<bool> device_hit(cluster.device_count(), false);
  for (unsigned r = 0; r < kRequests; ++r) {
    rin.write(payload_for(kN, r));
    ref.launch_sync(scale, kN,
                    rt::KernelArgs().arg(rin).arg(rout).scalar(3).scalar(5));
    const auto golden = rout.read();
    ASSERT_EQ(tickets[r].status(), RequestStatus::Ok) << "request " << r;
    const auto got = tickets[r].result();
    EXPECT_TRUE(std::equal(got.begin(), got.end(), golden.begin()))
        << "request " << r << " on device " << tickets[r].device();
    device_hit[static_cast<std::size_t>(tickets[r].device())] = true;
  }
  // The load balancer actually spread the burst: both SIMT-class devices
  // served some of it (the scalar soft CPU bids orders of magnitude higher
  // and may legitimately sit the burst out).
  EXPECT_TRUE(device_hit[0]);
  EXPECT_TRUE(device_hit[1]);
}

// ---- fairness ---------------------------------------------------------------

TEST(Cluster, RoundRobinFairnessUnderHotTenant) {
  constexpr unsigned kN = 16;
  DeviceCluster cluster({rt::DeviceDescriptor::simt_core(small_cfg())});
  cluster.register_plan(scale_plan(kN));
  const auto payload = payload_for(kN, 1);

  // Build the backlog with the dispatcher held so admission order is
  // deterministic: 8 hot requests, then 2 cold ones.
  cluster.pause();
  std::vector<ClusterTicket> hot, cold;
  for (int i = 0; i < 8; ++i) {
    hot.push_back(cluster.submit("hot", "scale", payload));
  }
  for (int i = 0; i < 2; ++i) {
    cold.push_back(cluster.submit("cold", "scale", payload));
  }
  cluster.resume();
  cluster.drain();

  // Round-robin dispatch interleaves the tenants (h c h c h h ...), so the
  // cold tenant's requests complete 2nd and 4th instead of 9th and 10th.
  for (auto& t : cold) {
    ASSERT_EQ(t.status(), RequestStatus::Ok);
  }
  EXPECT_EQ(cold[0].completion_seq(), 2u);
  EXPECT_EQ(cold[1].completion_seq(), 4u);
}

// ---- overload policies ------------------------------------------------------

TEST(Cluster, RejectPolicyBoundsTheQueue) {
  constexpr unsigned kN = 16;
  ClusterConfig cfg;
  cfg.queue_capacity = 2;
  cfg.policy = OverloadPolicy::Reject;
  DeviceCluster cluster({rt::DeviceDescriptor::simt_core(small_cfg())}, cfg);
  cluster.register_plan(scale_plan(kN));
  const auto payload = payload_for(kN, 1);

  cluster.pause();
  std::vector<ClusterTicket> tickets;
  for (int i = 0; i < 5; ++i) {
    tickets.push_back(cluster.submit("t", "scale", payload));
  }
  // The bound held: 2 queued, 3 rejected immediately (no hang, no device).
  EXPECT_EQ(tickets[2].status(), RequestStatus::Rejected);
  EXPECT_EQ(tickets[3].status(), RequestStatus::Rejected);
  EXPECT_EQ(tickets[4].status(), RequestStatus::Rejected);
  cluster.resume();
  cluster.drain();

  EXPECT_EQ(tickets[0].status(), RequestStatus::Ok);
  EXPECT_EQ(tickets[1].status(), RequestStatus::Ok);
  const auto stats = cluster.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 3u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(Cluster, ShedOldestEvictsTheOldest) {
  constexpr unsigned kN = 16;
  ClusterConfig cfg;
  cfg.queue_capacity = 2;
  cfg.policy = OverloadPolicy::ShedOldest;
  DeviceCluster cluster({rt::DeviceDescriptor::simt_core(small_cfg())}, cfg);
  cluster.register_plan(scale_plan(kN));
  const auto payload = payload_for(kN, 1);

  cluster.pause();
  std::vector<ClusterTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(cluster.submit("t", "scale", payload));
  }
  // Requests 0 and 1 were evicted (oldest first) to admit 2 and 3.
  EXPECT_EQ(tickets[0].status(), RequestStatus::Shed);
  EXPECT_EQ(tickets[1].status(), RequestStatus::Shed);
  cluster.resume();
  cluster.drain();

  EXPECT_EQ(tickets[2].status(), RequestStatus::Ok);
  EXPECT_EQ(tickets[3].status(), RequestStatus::Ok);
  EXPECT_THROW(tickets[0].result(), Error);
  const auto stats = cluster.stats();
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(Cluster, BlockPolicyNeverDropsWork) {
  constexpr unsigned kN = 16;
  ClusterConfig cfg;
  cfg.queue_capacity = 1;
  cfg.policy = OverloadPolicy::Block;
  DeviceCluster cluster({rt::DeviceDescriptor::simt_core(small_cfg())}, cfg);
  cluster.register_plan(scale_plan(kN));

  std::vector<ClusterTicket> tickets;
  for (unsigned i = 0; i < 6; ++i) {
    tickets.push_back(cluster.submit("t", "scale", payload_for(kN, i)));
  }
  cluster.drain();
  for (unsigned i = 0; i < 6; ++i) {
    ASSERT_EQ(tickets[i].status(), RequestStatus::Ok) << "request " << i;
  }
  const auto stats = cluster.stats();
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.completed, 6u);
}

// ---- hot-unplug and quarantine ----------------------------------------------

TEST(Cluster, HotUnplugLosesNoAcceptedRequests) {
  constexpr unsigned kN = 16;
  DeviceCluster cluster({rt::DeviceDescriptor::simt_core(small_cfg()),
                         rt::DeviceDescriptor::simt_core(small_cfg())});
  cluster.register_plan(scale_plan(kN));

  constexpr unsigned kRequests = 32;
  std::vector<ClusterTicket> tickets;
  std::vector<std::vector<std::uint32_t>> goldens;
  for (unsigned r = 0; r < kRequests; ++r) {
    const auto payload = payload_for(kN, r);
    goldens.push_back(golden_scale(payload, 3, 5));
    tickets.push_back(cluster.submit("t", "scale", payload));
    if (r == kRequests / 2) {
      cluster.unplug(0);  // mid-run: in-flight drains, queued fails over
    }
  }
  cluster.drain();

  EXPECT_FALSE(cluster.alive(0));
  EXPECT_EQ(cluster.alive_count(), 1u);
  for (unsigned r = 0; r < kRequests; ++r) {
    ASSERT_EQ(tickets[r].status(), RequestStatus::Ok) << "request " << r;
    const auto got = tickets[r].result();
    EXPECT_TRUE(std::equal(got.begin(), got.end(), goldens[r].begin()))
        << "request " << r;
  }
  // Requests submitted after the unplug all landed on the survivor.
  for (unsigned r = kRequests / 2 + 1; r < kRequests; ++r) {
    EXPECT_EQ(tickets[r].device(), 1) << "request " << r;
  }
}

TEST(Cluster, AllDevicesUnpluggedRejects) {
  constexpr unsigned kN = 16;
  DeviceCluster cluster({rt::DeviceDescriptor::simt_core(small_cfg()),
                         rt::DeviceDescriptor::simt_core(small_cfg())});
  cluster.register_plan(scale_plan(kN));
  cluster.unplug(0);
  cluster.unplug(1);
  EXPECT_EQ(cluster.alive_count(), 0u);

  auto t = cluster.submit("t", "scale", payload_for(kN, 1));
  EXPECT_EQ(t.status(), RequestStatus::Rejected);
  EXPECT_THROW(t.result(), Error);
  EXPECT_EQ(cluster.stats().rejected, 1u);
}

TEST(Cluster, StickyFaultQuarantinesAndSurvivorServes) {
  constexpr unsigned kN = 16;
  ClusterConfig cfg;
  cfg.max_retries = 0;  // fault resolves the request, quarantines once
  DeviceCluster cluster({rt::DeviceDescriptor::simt_core(small_cfg()),
                         rt::DeviceDescriptor::simt_core(small_cfg())},
                        cfg);

  // A copy plan whose `addr` scalar is also a store target. The default
  // (word 16, inside the plan's own output buffer -- the bump allocator
  // places in at [0,16) and out at [16,32)) is harmless; an out-of-range
  // override faults the serving device. out[0] is clobbered by the poke,
  // so content checks start at word 1.
  PlanSpec poke;
  poke.name = "poke";
  poke.kernel = "poke";
  poke.threads = kN;
  poke.source =
      ".kernel poke\n"
      ".param in buffer\n"
      ".param out buffer\n"
      ".param addr scalar\n"
      "movsr %r0, %tid\n"
      "lds %r2, [%r0 + $in]\n"
      "sts [%r0 + $out], %r2\n"
      "movi %r3, $addr\n"
      "sts [%r3], %r2\n"
      "exit\n";
  poke.args = {PlanArg::input(kN), PlanArg::output(kN),
               PlanArg::immediate(kN)};
  cluster.register_plan(poke);

  const auto payload = payload_for(kN, 1);
  const std::vector<ScalarOverride> oob = {{2, 9999}};
  auto bad = cluster.submit("t", "poke", payload, oob);
  bad.wait();
  EXPECT_EQ(bad.status(), RequestStatus::Failed);
  EXPECT_THROW(bad.result(), Error);

  // One device is quarantined; the survivor keeps serving good requests.
  EXPECT_EQ(cluster.alive_count(), 1u);
  EXPECT_EQ(cluster.stats().quarantined, 1u);
  auto good = cluster.submit("t", "poke", payload);
  good.wait();
  ASSERT_EQ(good.status(), RequestStatus::Ok);
  const auto got = good.result();
  EXPECT_TRUE(std::equal(got.begin() + 1, got.end(), payload.begin() + 1));
}

}  // namespace
}  // namespace simt::cluster
