// Differential tests for the predecoded fast-path execution engine.
//
// The functional fast path (CoreConfig::bit_accurate = false: DecodedImage
// per-opcode thunks, specialized lane loops) must be bit-identical to both
// the bit-accurate structural engine (Mul33 / shifter / LogicUnit walked
// per lane) and the independent ReferenceInterpreter -- registers,
// predicates, shared memory, AND perf counters (timing is computed apart
// from lane evaluation, so the cycle model may not shift by engine).
// The fast path itself runs twice: with the SIMD batched lane engine
// (CoreConfig::simd_lanes, the default) and with it pinned off, so the
// batch thunks, the guard-uniformity prescan, and the scalar fallback all
// face the same exhaustive opcode x guard matrix.
//
// Coverage: an exhaustive opcode x guard sweep over every guardable
// (operation/load/store class) instruction, a control-flow program covering
// the sequencer opcodes, randomized whole-program differentials, and a
// runtime-level engines-x-backends check on the FIR+scale+reduce mix.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/decoded_image.hpp"
#include "core/gpgpu.hpp"
#include "core/ref_interp.hpp"
#include "kernels/kernels.hpp"
#include "runtime/buffer.hpp"
#include "runtime/device.hpp"
#include "runtime/module.hpp"
#include "system/multicore.hpp"

namespace simt::core {
namespace {

using isa::Format;
using isa::Guard;
using isa::Instr;
using isa::Opcode;
using isa::TimingClass;

constexpr unsigned kThreads = 64;
constexpr unsigned kRegs = 16;
constexpr unsigned kSharedWords = 1024;

CoreConfig engine_cfg(bool bit_accurate) {
  CoreConfig cfg;
  cfg.num_sps = 16;
  cfg.max_threads = kThreads;
  cfg.regs_per_thread = kRegs;
  cfg.shared_mem_words = kSharedWords;
  cfg.predicates_enabled = true;
  cfg.bit_accurate = bit_accurate;
  return cfg;
}

void expect_perf_eq(const PerfCounters& a, const PerfCounters& b,
                    const std::string& what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.issue_cycles, b.issue_cycles) << what;
  EXPECT_EQ(a.flush_cycles, b.flush_cycles) << what;
  EXPECT_EQ(a.stall_cycles, b.stall_cycles) << what;
  EXPECT_EQ(a.fill_cycles, b.fill_cycles) << what;
  EXPECT_EQ(a.instructions, b.instructions) << what;
  EXPECT_EQ(a.operation_instrs, b.operation_instrs) << what;
  EXPECT_EQ(a.load_instrs, b.load_instrs) << what;
  EXPECT_EQ(a.store_instrs, b.store_instrs) << what;
  EXPECT_EQ(a.single_instrs, b.single_instrs) << what;
  EXPECT_EQ(a.thread_rows, b.thread_rows) << what;
  EXPECT_EQ(a.thread_ops, b.thread_ops) << what;
  EXPECT_EQ(a.operation_thread_ops, b.operation_thread_ops) << what;
  EXPECT_EQ(a.load_thread_ops, b.load_thread_ops) << what;
  EXPECT_EQ(a.store_thread_ops, b.store_thread_ops) << what;
  EXPECT_EQ(a.shm_reads, b.shm_reads) << what;
  EXPECT_EQ(a.shm_writes, b.shm_writes) << what;
  EXPECT_EQ(a.per_opcode, b.per_opcode) << what;
}

/// Run one program on the batched fast engine, the scalar-lane fast engine
/// (simd_lanes pinned off), the bit-accurate engine, and the reference
/// interpreter from identical random initial state; all architectural
/// state must match, and the three Gpgpu engines must agree on every perf
/// counter.
void run_differential(const Program& prog, std::uint64_t seed,
                      const std::string& what) {
  CoreConfig scalar_cfg = engine_cfg(false);
  scalar_cfg.simd_lanes = false;
  Gpgpu fast(engine_cfg(false));
  Gpgpu scalar_fast(scalar_cfg);
  Gpgpu accurate(engine_cfg(true));
  ReferenceInterpreter ref(engine_cfg(false));
  fast.load_program(prog);
  scalar_fast.load_program(prog);
  accurate.load_program(prog);
  ref.load_program(prog);
  fast.set_thread_count(kThreads);
  scalar_fast.set_thread_count(kThreads);
  accurate.set_thread_count(kThreads);
  ref.set_thread_count(kThreads);

  // Identical random registers and shared memory everywhere; predicates
  // start zero (the reference interpreter has no predicate poke) and gain
  // thread-varying state through the programs' SETP instructions.
  Xoshiro256 init(seed ^ 0xfeedULL);
  for (unsigned t = 0; t < kThreads; ++t) {
    for (unsigned r = 0; r < kRegs; ++r) {
      const auto v = init.next_u32();
      fast.write_reg(t, r, v);
      scalar_fast.write_reg(t, r, v);
      accurate.write_reg(t, r, v);
      ref.write_reg(t, r, v);
    }
  }
  for (unsigned a = 0; a < kSharedWords; ++a) {
    const auto v = init.next_u32();
    fast.write_shared(a, v);
    scalar_fast.write_shared(a, v);
    accurate.write_shared(a, v);
    ref.write_shared(a, v);
  }

  const auto rf = fast.run();
  const auto rs = scalar_fast.run();
  const auto ra = accurate.run();
  ref.run();
  ASSERT_TRUE(rf.exited) << what;
  ASSERT_TRUE(rs.exited) << what;
  ASSERT_TRUE(ra.exited) << what;
  expect_perf_eq(rf.perf, ra.perf, what);
  expect_perf_eq(rf.perf, rs.perf, what + " (simd vs scalar lanes)");

  for (unsigned t = 0; t < kThreads; ++t) {
    for (unsigned r = 0; r < kRegs; ++r) {
      ASSERT_EQ(fast.read_reg(t, r), accurate.read_reg(t, r))
          << what << " (vs bit-accurate) thread " << t << " reg " << r
          << "\n" << prog.listing();
      ASSERT_EQ(fast.read_reg(t, r), scalar_fast.read_reg(t, r))
          << what << " (vs scalar lanes) thread " << t << " reg " << r
          << "\n" << prog.listing();
      ASSERT_EQ(fast.read_reg(t, r), ref.read_reg(t, r))
          << what << " (vs reference) thread " << t << " reg " << r << "\n"
          << prog.listing();
    }
    for (unsigned p = 0; p < 4; ++p) {
      ASSERT_EQ(fast.read_pred(t, p), accurate.read_pred(t, p))
          << what << " thread " << t << " pred " << p;
      ASSERT_EQ(fast.read_pred(t, p), scalar_fast.read_pred(t, p))
          << what << " (vs scalar lanes) thread " << t << " pred " << p;
      ASSERT_EQ(fast.read_pred(t, p), ref.read_pred(t, p))
          << what << " (vs reference) thread " << t << " pred " << p;
    }
  }
  for (unsigned a = 0; a < kSharedWords; ++a) {
    ASSERT_EQ(fast.read_shared(a), accurate.read_shared(a))
        << what << " addr " << a;
    ASSERT_EQ(fast.read_shared(a), scalar_fast.read_shared(a))
        << what << " (vs scalar lanes) addr " << a;
    ASSERT_EQ(fast.read_shared(a), ref.read_shared(a))
        << what << " (vs reference) addr " << a;
  }
}

// ---- exhaustive opcode x guard matrix --------------------------------------

/// Build a program exercising `op` under `guard`: a prologue computes a
/// thread-varying predicate mask, memory ops get their address register
/// masked in range, then the instruction itself runs, then EXIT.
Program guarded_program(Opcode op, Guard guard, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto reg = [&] {
    return static_cast<std::uint8_t>(rng.next_below(kRegs));
  };
  std::vector<Instr> prog;

  // Thread-varying predicates: p0..p3 from compares of random registers.
  for (std::uint8_t p = 0; p < 4; ++p) {
    Instr setp;
    setp.op = Opcode::SETP_LTU;
    setp.pd = p;
    setp.ra = reg();
    setp.rb = reg();
    prog.push_back(setp);
  }

  Instr in;
  in.op = op;
  in.guard = guard;
  in.gpred = static_cast<std::uint8_t>(rng.next_below(4));
  const auto& info = isa::op_info(op);
  switch (info.format) {
    case Format::RRR:
      in.rd = reg();
      in.ra = reg();
      in.rb = reg();
      break;
    case Format::RRI:
      in.rd = reg();
      in.ra = reg();
      in.imm = static_cast<std::int32_t>(rng.next_u32());
      break;
    case Format::RR:
      in.rd = reg();
      in.ra = reg();
      break;
    case Format::RI:
      in.rd = reg();
      in.imm = static_cast<std::int32_t>(rng.next_u32());
      break;
    case Format::RS:
      in.rd = reg();
      in.imm = static_cast<std::int32_t>(
          rng.next_below(isa::kSpecialRegCount));
      break;
    case Format::PRR:
      in.pd = static_cast<std::uint8_t>(rng.next_below(4));
      in.ra = reg();
      in.rb = reg();
      break;
    case Format::PPP:
      in.pd = static_cast<std::uint8_t>(rng.next_below(4));
      in.pa = static_cast<std::uint8_t>(rng.next_below(4));
      in.pb = static_cast<std::uint8_t>(rng.next_below(4));
      break;
    case Format::PP:
      in.pd = static_cast<std::uint8_t>(rng.next_below(4));
      in.pa = static_cast<std::uint8_t>(rng.next_below(4));
      break;
    case Format::SELP:
      in.rd = reg();
      in.ra = reg();
      in.rb = reg();
      in.pa = static_cast<std::uint8_t>(rng.next_below(4));
      break;
    case Format::MEM: {
      Instr mask;
      mask.op = Opcode::ANDI;
      mask.rd = reg();
      mask.ra = reg();
      mask.imm = kSharedWords - 1;
      prog.push_back(mask);
      in.rd = reg();
      in.ra = mask.rd;
      in.imm = 0;
      break;
    }
    default:
      ADD_FAILURE() << "guarded_program only covers guardable formats";
      break;
  }
  prog.push_back(in);

  Instr exit;
  exit.op = Opcode::EXIT;
  prog.push_back(exit);
  return Program(std::move(prog));
}

TEST(FastPathMatrix, EveryGuardableOpcodeUnderEveryGuardClass) {
  unsigned covered = 0;
  for (int o = 0; o < isa::kOpcodeCount; ++o) {
    const auto op = static_cast<Opcode>(o);
    const auto& info = isa::op_info(op);
    if (info.timing != TimingClass::Operation &&
        info.timing != TimingClass::Load &&
        info.timing != TimingClass::Store) {
      continue;  // sequencer opcodes take no guard; covered below
    }
    for (const Guard guard :
         {Guard::None, Guard::IfTrue, Guard::IfFalse}) {
      const auto seed =
          static_cast<std::uint64_t>(o) * 31 +
          static_cast<std::uint64_t>(guard) + 1;
      const std::string what =
          std::string(info.mnemonic) + " guard " +
          std::to_string(static_cast<int>(guard));
      run_differential(guarded_program(op, guard, seed), seed, what);
      ++covered;
    }
  }
  // 61 opcodes minus the 12 sequencer ones (control flow, loops, thread
  // scaling), each under 3 guard classes.
  EXPECT_EQ(covered, 3u * (61u - 12u));
}

TEST(FastPathMatrix, SequencerOpcodesAgreeAcrossEngines) {
  // BRA/BRP/BRN/CALL/RET/LOOP/LOOPI/SETT/SETTI/NOP/BAR in one structured
  // program (EXIT ends it); both engines and the cycle model must agree.
  const auto prog = assembler::assemble(
      "movsr %r0, %tid\n"
      "movi %r1, 32\n"
      "setp.lt %p0, %r0, %r1\n"
      "setp.geu %p1, %r0, %r1\n"
      "brp %p0, taken\n"
      "addi %r2, %r2, 100\n"
      "taken:\n"
      "brn %p3, none_set\n"
      "addi %r2, %r2, 200\n"
      "none_set:\n"
      "bra fwd\n"
      "addi %r2, %r2, 400\n"
      "fwd:\n"
      "call fn\n"
      "movi %r3, 5\n"
      "loop %r3, loopr_end\n"
      "addi %r4, %r4, 1\n"
      "loopr_end:\n"
      "loopi 3, loopi_end\n"
      "addi %r5, %r5, 1\n"
      "loopi_end:\n"
      "sett %r3\n"
      "setti 16\n"
      "nop\n"
      "bar\n"
      "exit\n"
      "fn:\n"
      "addi %r6, %r6, 1\n"
      "ret\n");
  run_differential(prog, 0x5eed, "sequencer program");
}

// ---- randomized whole programs ---------------------------------------------

Program random_program(std::uint64_t seed, int length) {
  Xoshiro256 rng(seed);
  std::vector<Instr> prog;

  const auto reg = [&] {
    return static_cast<std::uint8_t>(rng.next_below(kRegs));
  };
  const auto pred = [&] {
    return static_cast<std::uint8_t>(rng.next_below(4));
  };
  const auto maybe_guard = [&](Instr& in) {
    const auto r = rng.next_below(8);
    if (r == 0) {
      in.guard = Guard::IfTrue;
      in.gpred = pred();
    } else if (r == 1) {
      in.guard = Guard::IfFalse;
      in.gpred = pred();
    }
  };

  const Opcode rrr_ops[] = {Opcode::ADD,   Opcode::SUB,    Opcode::MULLO,
                            Opcode::MULHI, Opcode::MULHIU, Opcode::MIN,
                            Opcode::MAX,   Opcode::MINU,   Opcode::MAXU,
                            Opcode::AND,   Opcode::OR,     Opcode::XOR,
                            Opcode::CNOT,  Opcode::SHL,    Opcode::SHR,
                            Opcode::SAR};
  const Opcode rr_ops[] = {Opcode::ABS,  Opcode::NEG, Opcode::NOT,
                           Opcode::POPC, Opcode::CLZ, Opcode::BREV,
                           Opcode::MOV};
  const Opcode rri_ops[] = {Opcode::ADDI, Opcode::SUBI, Opcode::MULI,
                            Opcode::ANDI, Opcode::ORI,  Opcode::XORI,
                            Opcode::SHLI, Opcode::SHRI, Opcode::SARI};
  const Opcode setp_ops[] = {Opcode::SETP_EQ,  Opcode::SETP_NE,
                             Opcode::SETP_LT,  Opcode::SETP_LE,
                             Opcode::SETP_GT,  Opcode::SETP_GE,
                             Opcode::SETP_LTU, Opcode::SETP_GEU};

  for (int i = 0; i < length; ++i) {
    Instr in;
    switch (rng.next_below(12)) {
      case 0:
      case 1:
      case 2:
        in.op = rrr_ops[rng.next_below(std::size(rrr_ops))];
        in.rd = reg();
        in.ra = reg();
        in.rb = reg();
        maybe_guard(in);
        break;
      case 3:
        in.op = rr_ops[rng.next_below(std::size(rr_ops))];
        in.rd = reg();
        in.ra = reg();
        maybe_guard(in);
        break;
      case 4:
        in.op = rri_ops[rng.next_below(std::size(rri_ops))];
        in.rd = reg();
        in.ra = reg();
        in.imm = static_cast<std::int32_t>(rng.next_u32());
        maybe_guard(in);
        break;
      case 5:
        in.op = rng.chance(0.5) ? Opcode::MOVI : Opcode::MOVSR;
        in.rd = reg();
        in.imm = in.op == Opcode::MOVI
                     ? static_cast<std::int32_t>(rng.next_u32())
                     : static_cast<std::int32_t>(
                           rng.next_below(isa::kSpecialRegCount));
        break;
      case 6:
        in.op = setp_ops[rng.next_below(std::size(setp_ops))];
        in.pd = pred();
        in.ra = reg();
        in.rb = reg();
        maybe_guard(in);
        break;
      case 7:
        switch (rng.next_below(4)) {
          case 0: in.op = Opcode::PAND; break;
          case 1: in.op = Opcode::POR; break;
          case 2: in.op = Opcode::PXOR; break;
          default: in.op = Opcode::PNOT; break;
        }
        in.pd = pred();
        in.pa = pred();
        in.pb = pred();
        maybe_guard(in);
        break;
      case 8:
        in.op = Opcode::SELP;
        in.rd = reg();
        in.ra = reg();
        in.rb = reg();
        in.pa = pred();
        maybe_guard(in);
        break;
      case 9:
      case 10: {
        Instr mask;
        mask.op = Opcode::ANDI;
        mask.rd = reg();
        mask.ra = reg();
        mask.imm = kSharedWords - 1;
        prog.push_back(mask);
        in.op = rng.chance(0.5) ? Opcode::LDS : Opcode::STS;
        in.rd = reg();
        in.ra = mask.rd;
        in.imm = 0;
        maybe_guard(in);
        break;
      }
      default:
        in.op = Opcode::SETTI;
        in.imm =
            static_cast<std::int32_t>(16 + rng.next_below(kThreads - 15));
        break;
    }
    prog.push_back(in);
  }

  if (rng.chance(0.3)) {
    Instr loop;
    loop.op = Opcode::LOOPI;
    const auto end = static_cast<std::int32_t>(prog.size() + 1);
    loop.imm = (static_cast<std::int32_t>(2 + rng.next_below(3)) << 16) | end;
    prog.insert(prog.begin(), loop);
  }

  Instr exit;
  exit.op = Opcode::EXIT;
  prog.push_back(exit);
  return Program(std::move(prog));
}

class FastPathRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastPathRandom, EnginesMatchOnRandomPrograms) {
  const std::uint64_t seed = GetParam();
  run_differential(random_program(seed, 60), seed,
                   "random seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastPathRandom,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---- decoded image mechanics -----------------------------------------------

TEST(DecodedImage, MultiCoreSharesOneImageAcrossCores) {
  system::SystemConfig cfg;
  cfg.num_cores = 3;
  cfg.core = engine_cfg(false);
  system::MultiCoreSystem sys(cfg);
  sys.load_kernel_all("movsr %r0, %tid\nexit\n");
  ASSERT_NE(sys.core(0).image(), nullptr);
  EXPECT_EQ(sys.core(0).image().get(), sys.core(1).image().get());
  EXPECT_EQ(sys.core(0).image().get(), sys.core(2).image().get());
}

TEST(DecodedImage, PatchedRewritesOnlyImmediates) {
  const auto prog = assembler::assemble("movi %r1, 7\nexit\n");
  const auto base = DecodedImage::build(prog, engine_cfg(false));
  const std::vector<std::pair<std::uint32_t, std::int32_t>> patches = {
      {0, 42}};
  const auto bound = DecodedImage::patched(*base, patches);
  EXPECT_EQ(base->at(0).instr.imm, 7);
  EXPECT_EQ(bound->at(0).instr.imm, 42);
  EXPECT_EQ(bound->words()[0], isa::encode(bound->at(0).instr));
  EXPECT_EQ(bound->at(0).info, base->at(0).info);
  // A patched image still loads (validation carried over).
  Gpgpu gpu(engine_cfg(false));
  gpu.load_image(bound);
  gpu.set_thread_count(16);
  ASSERT_TRUE(gpu.run().exited);
  EXPECT_EQ(gpu.read_reg(0, 1), 42u);
}

TEST(DecodedImage, PatchingControlFlowImmediatesThrows) {
  const auto prog = assembler::assemble("bra done\ndone:\nexit\n");
  const auto base = DecodedImage::build(prog, engine_cfg(false));
  const std::vector<std::pair<std::uint32_t, std::int32_t>> patches = {
      {0, 1}};
  EXPECT_THROW(DecodedImage::patched(*base, patches), Error);
}

TEST(DecodedImage, WideStoreWidthFactorsSurviveCaching) {
  // ceil(num_sps / write_ports) can exceed a byte: a 256-SP, one-write-
  // port config prices a store at 256 clocks per row, and the cached
  // width factor must carry that without truncation.
  CoreConfig cfg;
  cfg.num_sps = 256;
  cfg.max_threads = 256;
  cfg.regs_per_thread = 16;
  cfg.shared_mem_words = 1024;
  cfg.predicates_enabled = true;
  const auto prog =
      assembler::assemble("movsr %r0, %tid\nsts [%r0], %r0\nexit\n");
  const auto image = DecodedImage::build(prog, cfg);
  EXPECT_EQ(image->at(1).width, 256u);
  Gpgpu gpu(cfg);
  gpu.load_image(image);
  gpu.set_thread_count(256);
  const auto res = gpu.run();
  ASSERT_TRUE(res.exited);
  EXPECT_GE(res.perf.issue_cycles, 256u);
}

TEST(DecodedImage, MismatchedConfigurationRejected) {
  const auto prog = assembler::assemble("exit\n");
  const auto image = DecodedImage::build(prog, engine_cfg(false));
  CoreConfig other = engine_cfg(false);
  other.regs_per_thread = 32;
  Gpgpu gpu(other);
  EXPECT_THROW(gpu.load_image(image), Error);
  // Functional (unvalidated) images are rejected by the cycle-accurate
  // core outright.
  EXPECT_THROW(gpu.load_image(DecodedImage::build(prog)), Error);
}

}  // namespace
}  // namespace simt::core

// ---- runtime-level: engines x backends -------------------------------------

namespace simt::runtime {
namespace {

TEST(FastPathRuntime, EnginesAndBackendsAgreeOnTheServingMix) {
  constexpr unsigned kN = 128;
  constexpr unsigned kTaps = 4;
  constexpr unsigned kChunk = 4;
  constexpr unsigned kParts = kN / kChunk;

  const auto run_mix = [&](const DeviceDescriptor& desc) {
    Device dev(desc);
    auto x = dev.alloc<std::uint32_t>(kN + kTaps);
    auto coef = dev.alloc<std::uint32_t>(kTaps);
    auto y = dev.alloc<std::uint32_t>(kN);
    auto z = dev.alloc<std::uint32_t>(kN);
    auto parts = dev.alloc<std::uint32_t>(kParts);
    auto fir = dev.load_module(kernels::fir_abi(kTaps, 2)).kernel("fir");
    auto scale = dev.load_module(kernels::scale_abi()).kernel("scale");
    auto reduce =
        dev.load_module(kernels::reduce_abi(kChunk)).kernel("reduce");
    std::vector<std::uint32_t> xin(kN + kTaps), c(kTaps);
    for (unsigned i = 0; i < xin.size(); ++i) {
      xin[i] = (i * 37 + 11) % 251;
    }
    for (unsigned k = 0; k < kTaps; ++k) {
      c[k] = k + 2;
    }
    x.write(std::span<const std::uint32_t>(xin));
    coef.write(std::span<const std::uint32_t>(c));
    dev.launch_sync(fir, kN, KernelArgs().arg(x).arg(coef).arg(y));
    dev.launch_sync(scale, kN,
                    KernelArgs().arg(y).arg(z).scalar(5).scalar(3));
    dev.launch_sync(reduce, kParts, KernelArgs().arg(z).arg(parts));
    return parts.read();
  };

  core::CoreConfig fast;
  fast.max_threads = 64;
  fast.shared_mem_words = 2048;
  fast.bit_accurate = false;
  core::CoreConfig acc = fast;
  acc.bit_accurate = true;

  const auto golden = run_mix(DeviceDescriptor::simt_core(fast));
  EXPECT_EQ(run_mix(DeviceDescriptor::simt_core(acc)), golden);
  EXPECT_EQ(run_mix(DeviceDescriptor::multi_core(3, fast)), golden);
  EXPECT_EQ(run_mix(DeviceDescriptor::multi_core(3, acc)), golden);
  baseline::ScalarCpuConfig scfg;
  scfg.shared_mem_words = 2048;
  EXPECT_EQ(run_mix(DeviceDescriptor::scalar_cpu(scfg)), golden);
}

TEST(FastPathRuntime, DecodeCacheBuildsOncePerModule) {
  core::CoreConfig cfg;
  cfg.max_threads = 64;
  cfg.shared_mem_words = 1024;
  cfg.bit_accurate = false;  // engine_name check below
  Device dev(DeviceDescriptor::simt_core(cfg));
  auto a = dev.alloc<std::uint32_t>(64);
  auto b = dev.alloc<std::uint32_t>(64);
  auto c = dev.alloc<std::uint32_t>(64);
  auto d = dev.alloc<std::uint32_t>(64);
  Module& mod = dev.load_module(kernels::vecadd_abi());
  EXPECT_EQ(dev.decode_cache_misses(), 0u);

  // Alternating bindings force a repatch + reload every launch, but the
  // module decodes exactly once; every later load is a cache hit.
  const KernelArgs ab = KernelArgs().arg(a).arg(b).arg(c);
  const KernelArgs ba = KernelArgs().arg(b).arg(a).arg(d);
  for (unsigned i = 0; i < 3; ++i) {
    dev.launch_sync(mod.kernel("vecadd"), 64, i % 2 == 0 ? ab : ba);
  }
  EXPECT_EQ(dev.decode_cache_misses(), 1u);
  EXPECT_EQ(dev.decode_cache_hits(), 2u);

  // A second module decodes once more.
  Module& mod2 = dev.load_module(kernels::scale_abi());
  dev.launch_sync(mod2.kernel("scale"), 64,
                  KernelArgs().arg(a).arg(b).scalar(2).scalar(0));
  EXPECT_EQ(dev.decode_cache_misses(), 2u);
  EXPECT_EQ(dev.engine_name(), "fast");
}

}  // namespace
}  // namespace simt::runtime
